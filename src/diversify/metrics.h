// Tuple diversification evaluation metrics (Sec. 5.4).
//
// Average Diversity (Eq. 1): mean of all query-result and result-result
// distances, normalized by (n + k); query-query distances are excluded
// (constant across methods).
// Min Diversity (Eq. 2): the minimum distance over the same pair sets.
#ifndef DUST_DIVERSIFY_METRICS_H_
#define DUST_DIVERSIFY_METRICS_H_

#include <vector>

#include "la/distance.h"

namespace dust::diversify {

struct DiversityScores {
  double average = 0.0;  // Eq. 1
  double min = 0.0;      // Eq. 2
};

/// Eq. 1 exactly as written: (sum of query-to-result distances + sum of
/// pairwise result distances) / (n + k).
double AverageDiversity(const std::vector<la::Vec>& query,
                        const std::vector<la::Vec>& selected,
                        la::Metric metric);

/// Eq. 2: min over {delta(q_i,t_j)} ∪ {delta(t_i,t_j)}. Returns 0 when both
/// pair sets are empty.
double MinDiversity(const std::vector<la::Vec>& query,
                    const std::vector<la::Vec>& selected, la::Metric metric);

/// Both metrics in one pass.
DiversityScores ScoreDiversity(const std::vector<la::Vec>& query,
                               const std::vector<la::Vec>& selected,
                               la::Metric metric);

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_METRICS_H_
