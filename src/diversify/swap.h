// SWAP (Yu et al., EDBT'09): starts from the k most relevant candidates
// (closest to the query) and greedily swaps in outside candidates when the
// exchange increases the diversity of the set while keeping relevance loss
// within an upper bound.
#ifndef DUST_DIVERSIFY_SWAP_H_
#define DUST_DIVERSIFY_SWAP_H_

#include "diversify/diversifier.h"

namespace dust::diversify {

struct SwapConfig {
  /// Maximum tolerated relevance drop per swap (fraction of the relevance
  /// range); Yu et al.'s upper-bound parameter.
  double relevance_bound = 0.3;
};

class SwapDiversifier : public Diversifier {
 public:
  explicit SwapDiversifier(SwapConfig config = {}) : config_(config) {}

  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "SWAP"; }

 private:
  SwapConfig config_;
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_SWAP_H_
