#include "diversify/threshold_div.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> ThresholdDiversifier::CoverWithRadius(
    const DiversifyInput& input, float radius) const {
  const std::vector<la::Vec>& lake = *input.lake;
  std::vector<size_t> cover;
  std::vector<char> covered(lake.size(), 0);
  for (size_t i = 0; i < lake.size(); ++i) {
    if (covered[i]) continue;
    cover.push_back(i);
    covered[i] = 1;
    for (size_t j = i + 1; j < lake.size(); ++j) {
      if (!covered[j] &&
          la::Distance(input.metric, lake[i], lake[j]) <= radius) {
        covered[j] = 1;
      }
    }
  }
  return cover;
}

std::vector<size_t> ThresholdDiversifier::SelectDiverse(
    const DiversifyInput& input, size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  if (lake.empty() || k == 0) return {};
  k = std::min(k, lake.size());

  // Radius range: 0 gives every tuple; the diameter gives one tuple.
  float lo = 0.0f;
  float hi = 0.0f;
  for (size_t i = 0; i < std::min<size_t>(lake.size(), 64); ++i) {
    for (size_t j = i + 1; j < std::min<size_t>(lake.size(), 64); ++j) {
      hi = std::max(hi, la::Distance(input.metric, lake[i], lake[j]));
    }
  }
  if (hi <= 0.0f) hi = 1.0f;

  std::vector<size_t> best = CoverWithRadius(input, hi / 2);
  for (size_t iter = 0; iter < config_.search_iterations; ++iter) {
    float mid = 0.5f * (lo + hi);
    std::vector<size_t> cover = CoverWithRadius(input, mid);
    best = cover;
    if (cover.size() > k) {
      lo = mid;  // too fine: raise the radius
    } else if (cover.size() < k) {
      hi = mid;  // too coarse
    } else {
      break;
    }
  }

  if (best.size() > k) {
    best.resize(k);  // construction order = first-seen representatives
    return best;
  }
  // Pad with the leftovers farthest from the current result set.
  std::vector<char> chosen(lake.size(), 0);
  for (size_t i : best) chosen[i] = 1;
  while (best.size() < k) {
    float best_gap = -1.0f;
    size_t arg = lake.size();
    for (size_t i = 0; i < lake.size(); ++i) {
      if (chosen[i]) continue;
      float gap = std::numeric_limits<float>::max();
      for (size_t j : best) {
        gap = std::min(gap, la::Distance(input.metric, lake[i], lake[j]));
      }
      if (gap > best_gap) {
        best_gap = gap;
        arg = i;
      }
    }
    DUST_CHECK(arg < lake.size());
    chosen[arg] = 1;
    best.push_back(arg);
  }
  return best;
}

}  // namespace dust::diversify
