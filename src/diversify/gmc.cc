#include "diversify/gmc.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> GmcDiversifier::SelectDiverse(const DiversifyInput& input,
                                                  size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  const size_t s = lake.size();
  if (s == 0 || k == 0) return {};
  k = std::min(k, s);

  // Relevance: closeness to the query (uniform when no query is given).
  std::vector<float> relevance(s, 0.0f);
  if (input.query != nullptr && !input.query->empty()) {
    for (size_t i = 0; i < s; ++i) {
      relevance[i] = 1.0f - MeanDistanceToQuery(input, i);
    }
  }

  // Optional Θ(s²) distance cache (the paper's implementation equivalent).
  std::vector<float> cache;
  if (config_.cache_distances) {
    cache.assign(s * s, 0.0f);
    for (size_t i = 0; i < s; ++i) {
      for (size_t j = i + 1; j < s; ++j) {
        float d = la::Distance(input.metric, lake[i], lake[j]);
        cache[i * s + j] = d;
        cache[j * s + i] = d;
      }
    }
  }
  auto dist = [&](size_t i, size_t j) -> float {
    if (config_.cache_distances) return cache[i * s + j];
    return la::Distance(input.metric, lake[i], lake[j]);
  };

  const double lambda = config_.lambda;
  const double div_weight = (k > 1) ? 2.0 * lambda / (k - 1.0) : 0.0;

  std::vector<char> selected(s, 0);
  std::vector<float> sum_to_selected(s, 0.0f);
  std::vector<size_t> result;
  result.reserve(k);
  std::vector<float> scratch;
  scratch.reserve(s);

  for (size_t step = 0; step < k; ++step) {
    const size_t lookahead = (k - 1) - result.size();  // future slots
    double best_mmc = -std::numeric_limits<double>::infinity();
    size_t best = s;
    for (size_t i = 0; i < s; ++i) {
      if (selected[i]) continue;
      // Look-ahead: sum of the `lookahead` largest distances from i to the
      // remaining (not selected, not i) candidates. This full scan per
      // candidate per iteration is what makes GMC Θ(k·s²).
      double future = 0.0;
      if (lookahead > 0) {
        scratch.clear();
        for (size_t j = 0; j < s; ++j) {
          if (j == i || selected[j]) continue;
          scratch.push_back(dist(i, j));
        }
        size_t take = std::min(lookahead, scratch.size());
        if (take > 0) {
          std::nth_element(scratch.begin(),
                           scratch.begin() + static_cast<long>(take - 1),
                           scratch.end(), std::greater<float>());
          for (size_t j = 0; j < take; ++j) future += scratch[j];
        }
      }
      double mmc = (1.0 - lambda) * relevance[i] +
                   div_weight * (static_cast<double>(sum_to_selected[i]) +
                                 0.5 * future);
      if (mmc > best_mmc) {
        best_mmc = mmc;
        best = i;
      }
    }
    DUST_CHECK(best < s);
    selected[best] = 1;
    result.push_back(best);
    for (size_t j = 0; j < s; ++j) {
      if (!selected[j]) sum_to_selected[j] += dist(best, j);
    }
  }
  return result;
}

}  // namespace dust::diversify
