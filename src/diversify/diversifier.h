// Tuple diversification interface (Sec. 5): given embeddings of the query
// tuples and of the unionable data lake tuples, select k lake tuples that
// are diverse among themselves and from the query.
#ifndef DUST_DIVERSIFY_DIVERSIFIER_H_
#define DUST_DIVERSIFY_DIVERSIFIER_H_

#include <string>
#include <vector>

#include "la/distance.h"

namespace dust::diversify {

struct DiversifyInput {
  /// E_Q: query tuple embeddings (may be empty for query-agnostic methods).
  const std::vector<la::Vec>* query = nullptr;
  /// E_T: unionable data lake tuple embeddings.
  const std::vector<la::Vec>* lake = nullptr;
  /// Tuple distance function delta(.) — cosine in all paper experiments.
  la::Metric metric = la::Metric::kCosine;
  /// Optional provenance: table id of each lake tuple (used by DUST's
  /// per-table pruning, Sec. 5.1). May be null.
  const std::vector<size_t>* table_of = nullptr;
};

/// Selects k diverse lake tuples; returns indices into `input.lake`.
class Diversifier {
 public:
  virtual ~Diversifier() = default;

  /// Returns min(k, lake size) distinct indices.
  virtual std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                            size_t k) = 0;

  virtual std::string name() const = 0;
};

/// Mean distance from lake tuple `t` to all query tuples (0 if no query).
float MeanDistanceToQuery(const DiversifyInput& input, size_t t);

/// Min distance from lake tuple `t` to all query tuples (+inf if no query).
float MinDistanceToQuery(const DiversifyInput& input, size_t t);

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_DIVERSIFIER_H_
