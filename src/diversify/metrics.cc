#include "diversify/metrics.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dust::diversify {

DiversityScores ScoreDiversity(const std::vector<la::Vec>& query,
                               const std::vector<la::Vec>& selected,
                               la::Metric metric) {
  DiversityScores out;
  double sum = 0.0;
  double min_distance = std::numeric_limits<double>::infinity();
  size_t pairs = 0;

  // Row-at-a-time batch kernel. The norm cache (only read by cosine) turns
  // every cosine pair into one fused dot product; the identity id list
  // lets the pairwise pass scan just the strict upper triangle.
  const size_t n = selected.size();
  std::vector<float> selected_norms;
  const float* norms = nullptr;
  if (metric == la::Metric::kCosine) {
    selected_norms = la::NormsOf(selected);
    norms = selected_norms.data();
  }
  std::vector<size_t> ids(n);
  std::iota(ids.begin(), ids.end(), size_t{0});
  std::vector<float> row(n);
  for (const la::Vec& q : query) {
    la::DistanceToMany(metric, q, selected, norms, ids.data(), n, row.data());
    for (size_t j = 0; j < n; ++j) {
      sum += row[j];
      min_distance = std::min(min_distance, static_cast<double>(row[j]));
      ++pairs;
    }
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    // Distances to j in (i, n) only — the diagonal's d(i,i)=0 must not
    // poison the min, and the lower triangle is redundant.
    la::DistanceToMany(metric, selected[i], selected, norms,
                       ids.data() + i + 1, n - i - 1, row.data());
    for (size_t j = 0; j + i + 1 < n; ++j) {
      sum += row[j];
      min_distance = std::min(min_distance, static_cast<double>(row[j]));
      ++pairs;
    }
  }

  size_t denom = query.size() + selected.size();
  out.average = (denom > 0) ? sum / static_cast<double>(denom) : 0.0;
  out.min = (pairs > 0) ? min_distance : 0.0;
  return out;
}

double AverageDiversity(const std::vector<la::Vec>& query,
                        const std::vector<la::Vec>& selected,
                        la::Metric metric) {
  return ScoreDiversity(query, selected, metric).average;
}

double MinDiversity(const std::vector<la::Vec>& query,
                    const std::vector<la::Vec>& selected, la::Metric metric) {
  return ScoreDiversity(query, selected, metric).min;
}

}  // namespace dust::diversify
