#include "diversify/metrics.h"

#include <algorithm>
#include <limits>

namespace dust::diversify {

DiversityScores ScoreDiversity(const std::vector<la::Vec>& query,
                               const std::vector<la::Vec>& selected,
                               la::Metric metric) {
  DiversityScores out;
  double sum = 0.0;
  double min_distance = std::numeric_limits<double>::infinity();
  size_t pairs = 0;

  for (const la::Vec& q : query) {
    for (const la::Vec& t : selected) {
      double d = la::Distance(metric, q, t);
      sum += d;
      min_distance = std::min(min_distance, d);
      ++pairs;
    }
  }
  for (size_t i = 0; i + 1 < selected.size(); ++i) {
    for (size_t j = i + 1; j < selected.size(); ++j) {
      double d = la::Distance(metric, selected[i], selected[j]);
      sum += d;
      min_distance = std::min(min_distance, d);
      ++pairs;
    }
  }

  size_t denom = query.size() + selected.size();
  out.average = (denom > 0) ? sum / static_cast<double>(denom) : 0.0;
  out.min = (pairs > 0) ? min_distance : 0.0;
  return out;
}

double AverageDiversity(const std::vector<la::Vec>& query,
                        const std::vector<la::Vec>& selected,
                        la::Metric metric) {
  return ScoreDiversity(query, selected, metric).average;
}

double MinDiversity(const std::vector<la::Vec>& query,
                    const std::vector<la::Vec>& selected, la::Metric metric) {
  return ScoreDiversity(query, selected, metric).min;
}

}  // namespace dust::diversify
