// GMC — Greedy Marginal Contribution (Vieira et al., DivDB, PVLDB'11).
//
// Greedily builds the result set R: at each step every remaining candidate
// is scored by its maximum marginal contribution (MMC) to the MMR-style
// objective
//   F(R) = (1-λ)·k·Σ_{s∈R} rel(s) + (2λ/(k-1))·Σ_{s,s'∈R} δ(s,s')
// where the MMC of s includes (a) its relevance, (b) its distances to the
// already-selected items, and (c) an optimistic look-ahead: the sum of its
// (k-1-|R|) largest distances to the not-yet-selected candidates. The
// look-ahead makes each iteration Θ(s²), i.e., GMC is Θ(k·s²) overall —
// the quadratic behaviour measured in Fig. 7.
//
// Relevance adaptation for unionable tuples (all candidates are relevant):
// rel(s) = 1 - mean distance to the query tuples, matching how prior work
// adapted MMR to table search [32].
#ifndef DUST_DIVERSIFY_GMC_H_
#define DUST_DIVERSIFY_GMC_H_

#include "diversify/diversifier.h"

namespace dust::diversify {

struct GmcConfig {
  /// Relevance/diversity trade-off λ (DivDB default 0.5).
  double lambda = 0.5;
  /// Cache the candidate-candidate distance matrix (Θ(s²) memory). Without
  /// the cache distances are recomputed on the fly each iteration.
  bool cache_distances = true;
};

class GmcDiversifier : public Diversifier {
 public:
  explicit GmcDiversifier(GmcConfig config = {}) : config_(config) {}

  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "GMC"; }

 private:
  GmcConfig config_;
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_GMC_H_
