#include "diversify/clt.h"

#include "cluster/agglomerative.h"
#include "cluster/medoid.h"
#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> CltDiversifier::SelectDiverse(const DiversifyInput& input,
                                                  size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  if (lake.empty() || k == 0) return {};
  k = std::min(k, lake.size());

  la::DistanceMatrix distances(lake, input.metric);
  cluster::Dendrogram dendrogram =
      cluster::AgglomerativeCluster(distances, config_.linkage);
  std::vector<size_t> labels = cluster::CutDendrogram(dendrogram, k);

  // Medoid per cluster (reusing the distance matrix).
  std::vector<std::vector<size_t>> groups = cluster::GroupByLabel(labels);
  std::vector<size_t> result;
  result.reserve(k);
  for (const auto& members : groups) {
    if (members.empty()) continue;
    result.push_back(cluster::MedoidOf(members, distances));
  }
  return result;
}

}  // namespace dust::diversify
