#include "diversify/dust_diversifier.h"

#include <algorithm>
#include <numeric>

#include "cluster/agglomerative.h"
#include "cluster/medoid.h"
#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> DustDiversifier::PruneTuples(const DiversifyInput& input,
                                                 size_t s) const {
  const std::vector<la::Vec>& lake = *input.lake;
  const size_t n = lake.size();
  if (n <= s) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }

  // Group tuples by source table (one group when provenance is absent).
  size_t num_tables = 1;
  if (input.table_of != nullptr) {
    DUST_CHECK(input.table_of->size() == n);
    for (size_t t : *input.table_of) num_tables = std::max(num_tables, t + 1);
  }
  const size_t dim = lake[0].size();
  std::vector<la::Vec> mean(num_tables, la::Vec(dim, 0.0f));
  std::vector<std::vector<size_t>> members(num_tables);
  for (size_t i = 0; i < n; ++i) {
    size_t g = (input.table_of != nullptr) ? (*input.table_of)[i] : 0;
    la::AddInPlace(&mean[g], lake[i]);
    members[g].push_back(i);
  }
  for (size_t g = 0; g < num_tables; ++g) {
    if (!members[g].empty()) {
      la::ScaleInPlace(&mean[g], 1.0f / static_cast<float>(members[g].size()));
    }
  }

  // Score(t) = delta(table mean, E(t)); keep the global top-s (§5.1). One
  // gathered batch-kernel scan per table, with a lake norm cache (only
  // read by cosine) shared across groups.
  std::vector<float> lake_norms;
  const float* norms = nullptr;
  if (input.metric == la::Metric::kCosine) {
    lake_norms = la::NormsOf(lake);
    norms = lake_norms.data();
  }
  std::vector<std::pair<float, size_t>> scored(n);
  std::vector<float> group_distances;
  for (size_t g = 0; g < num_tables; ++g) {
    if (members[g].empty()) continue;
    group_distances.resize(members[g].size());
    la::DistanceToMany(input.metric, mean[g], lake, norms,
                       members[g].data(), members[g].size(),
                       group_distances.data());
    for (size_t j = 0; j < members[g].size(); ++j) {
      scored[members[g][j]] = {group_distances[j], members[g][j]};
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  std::vector<size_t> kept;
  kept.reserve(s);
  for (size_t i = 0; i < s; ++i) kept.push_back(scored[i].second);
  std::sort(kept.begin(), kept.end());
  return kept;
}

std::vector<size_t> RankCandidatesAgainstQuery(
    const DiversifyInput& input, const std::vector<size_t>& candidates) {
  struct Ranked {
    float min_distance;
    float mean_distance;
    size_t index;
  };
  const bool has_query = input.query != nullptr && !input.query->empty();
  // Query norms computed once for the whole ranking pass (only read by
  // cosine), so each candidate-vs-query-tuple pair is one fused dot.
  std::vector<float> query_norms;
  if (has_query && input.metric == la::Metric::kCosine) {
    query_norms = la::NormsOf(*input.query);
  }
  std::vector<float> distances;
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (size_t i : candidates) {
    Ranked r;
    r.index = i;
    if (!has_query) {
      // No query: every candidate ties; keep input order deterministically.
      r.min_distance = 0.0f;
      r.mean_distance = 0.0f;
    } else {
      const la::Vec& candidate = (*input.lake)[i];
      if (query_norms.empty()) {
        la::DistanceToMany(input.metric, candidate, *input.query, &distances);
      } else {
        la::DistanceToMany(input.metric, candidate, *input.query, query_norms,
                           &distances);
      }
      float min = distances[0];
      float sum = 0.0f;
      for (float d : distances) {
        if (d < min) min = d;
        sum += d;
      }
      r.min_distance = min;
      r.mean_distance = sum / static_cast<float>(distances.size());
    }
    ranked.push_back(r);
  }
  // Descending min distance; ties broken by descending mean distance
  // (Example 5), then by index for determinism.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.min_distance != b.min_distance) {
                       return a.min_distance > b.min_distance;
                     }
                     if (a.mean_distance != b.mean_distance) {
                       return a.mean_distance > b.mean_distance;
                     }
                     return a.index < b.index;
                   });
  std::vector<size_t> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.index);
  return out;
}

std::vector<size_t> DustDiversifier::SelectDiverse(const DiversifyInput& input,
                                                   size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  if (lake.empty() || k == 0) return {};
  k = std::min(k, lake.size());

  // §5.1 Pruning.
  std::vector<size_t> kept;
  if (config_.enable_pruning) {
    kept = PruneTuples(input, std::max(config_.prune_s, k));
  } else {
    kept.resize(lake.size());
    std::iota(kept.begin(), kept.end(), 0);
  }

  // §5.2 Clustering into k·p clusters; medoids become candidates.
  std::vector<size_t> candidates;
  size_t num_clusters = std::min(kept.size(), k * std::max<size_t>(1, config_.p));
  if (kept.size() <= num_clusters) {
    candidates = kept;
  } else {
    std::vector<la::Vec> pruned_points;
    pruned_points.reserve(kept.size());
    for (size_t i : kept) pruned_points.push_back(lake[i]);
    la::DistanceMatrix distances(pruned_points, input.metric);
    cluster::Dendrogram dendrogram =
        cluster::AgglomerativeCluster(distances, config_.linkage);
    std::vector<size_t> labels =
        cluster::CutDendrogram(dendrogram, num_clusters);
    for (const auto& members : cluster::GroupByLabel(labels)) {
      if (members.empty()) continue;
      candidates.push_back(kept[cluster::MedoidOf(members, distances)]);
    }
  }

  // §5.3 Re-rank against the query; return the top k.
  std::vector<size_t> ranked = RankCandidatesAgainstQuery(input, candidates);
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace dust::diversify
