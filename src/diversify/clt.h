// CLT — clustering baseline (van Leuken et al., WWW'09, as adapted in
// Sec. 6.4.2): cluster the lake tuples into k clusters and return each
// cluster's medoid. Query-agnostic: no re-ranking against the query tuples
// (the gap DUST's §5.3 step closes). Uses the same hierarchical clustering
// and parameters as DUST for a controlled comparison.
#ifndef DUST_DIVERSIFY_CLT_H_
#define DUST_DIVERSIFY_CLT_H_

#include "cluster/linkage.h"
#include "diversify/diversifier.h"

namespace dust::diversify {

struct CltConfig {
  cluster::Linkage linkage = cluster::Linkage::kAverage;
};

class CltDiversifier : public Diversifier {
 public:
  explicit CltDiversifier(CltConfig config = {}) : config_(config) {}

  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "CLT"; }

 private:
  CltConfig config_;
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_CLT_H_
