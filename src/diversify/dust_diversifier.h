// DUST tuple diversification — Algorithm 2 (Sec. 5).
//
//  1. Pruning (§5.1): within each source table, rank tuples by the distance
//     of their embedding from the table's mean embedding; keep the top-s
//     overall (the most outlying, i.e. most diverse, candidates).
//  2. Clustering (§5.2): hierarchically cluster the surviving tuples into
//     k·p clusters (average linkage) and take each cluster's medoid as a
//     candidate — candidates are diverse among themselves.
//  3. Re-ranking (§5.3): score each candidate by its minimum distance to
//     any query tuple (ties broken by the highest average distance), sort
//     descending, return the top k — candidates diverse from the query win.
#ifndef DUST_DIVERSIFY_DUST_DIVERSIFIER_H_
#define DUST_DIVERSIFY_DUST_DIVERSIFIER_H_

#include "cluster/linkage.h"
#include "diversify/diversifier.h"

namespace dust::diversify {

struct DustDiversifierConfig {
  /// Candidate multiplier: the clustering step produces k·p clusters
  /// (p = 2 in all paper experiments; see Fig. 11 for the sweep).
  size_t p = 2;
  /// Pruning cap s (§5.1): tuples kept for clustering (2500 in the paper).
  size_t prune_s = 2500;
  /// Disable to measure pruning's impact (Appendix A.2.3).
  bool enable_pruning = true;
  cluster::Linkage linkage = cluster::Linkage::kAverage;
};

class DustDiversifier : public Diversifier {
 public:
  explicit DustDiversifier(DustDiversifierConfig config = {})
      : config_(config) {}

  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "DUST"; }

  /// §5.1 in isolation: indices of the tuples kept by pruning (exposed for
  /// tests and the pruning ablation).
  std::vector<size_t> PruneTuples(const DiversifyInput& input, size_t s) const;

 private:
  DustDiversifierConfig config_;
};

/// §5.3 in isolation: ranks `candidates` (indices into input.lake) by
/// descending (min distance to query, then mean distance to query).
std::vector<size_t> RankCandidatesAgainstQuery(
    const DiversifyInput& input, const std::vector<size_t>& candidates);

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_DUST_DIVERSIFIER_H_
