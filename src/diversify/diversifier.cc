#include "diversify/diversifier.h"

#include <limits>

#include "util/status.h"

namespace dust::diversify {
namespace {

/// Distances from lake tuple `t` to every query tuple, via the one-to-many
/// batch kernel. Scratch is per-thread: the rankers call this in tight
/// per-candidate loops, sometimes from parallel sections.
const std::vector<float>& DistancesToQuery(const DiversifyInput& input,
                                           size_t t) {
  thread_local std::vector<float> distances;
  la::DistanceToMany(input.metric, (*input.lake)[t], *input.query, &distances);
  return distances;
}

}  // namespace

float MeanDistanceToQuery(const DiversifyInput& input, size_t t) {
  DUST_CHECK(input.lake != nullptr && t < input.lake->size());
  if (input.query == nullptr || input.query->empty()) return 0.0f;
  const std::vector<float>& distances = DistancesToQuery(input, t);
  float sum = 0.0f;
  for (float d : distances) sum += d;
  return sum / static_cast<float>(distances.size());
}

float MinDistanceToQuery(const DiversifyInput& input, size_t t) {
  DUST_CHECK(input.lake != nullptr && t < input.lake->size());
  if (input.query == nullptr || input.query->empty()) {
    return std::numeric_limits<float>::infinity();
  }
  float best = std::numeric_limits<float>::infinity();
  for (float d : DistancesToQuery(input, t)) {
    if (d < best) best = d;
  }
  return best;
}

}  // namespace dust::diversify
