#include "diversify/diversifier.h"

#include <limits>

#include "util/status.h"

namespace dust::diversify {

float MeanDistanceToQuery(const DiversifyInput& input, size_t t) {
  DUST_CHECK(input.lake != nullptr && t < input.lake->size());
  if (input.query == nullptr || input.query->empty()) return 0.0f;
  float sum = 0.0f;
  for (const la::Vec& q : *input.query) {
    sum += la::Distance(input.metric, (*input.lake)[t], q);
  }
  return sum / static_cast<float>(input.query->size());
}

float MinDistanceToQuery(const DiversifyInput& input, size_t t) {
  DUST_CHECK(input.lake != nullptr && t < input.lake->size());
  if (input.query == nullptr || input.query->empty()) {
    return std::numeric_limits<float>::infinity();
  }
  float best = std::numeric_limits<float>::infinity();
  for (const la::Vec& q : *input.query) {
    float d = la::Distance(input.metric, (*input.lake)[t], q);
    if (d < best) best = d;
  }
  return best;
}

}  // namespace dust::diversify
