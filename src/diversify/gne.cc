#include "diversify/gne.h"

#include <algorithm>
#include <limits>

#include "util/rng.h"
#include "util/status.h"

namespace dust::diversify {

namespace {

// MMR objective F(R) = (1-λ)·k·Σ rel + (2λ/(k-1))·Σ_{pairs} δ.
double Objective(const std::vector<size_t>& set,
                 const std::vector<float>& relevance,
                 const DiversifyInput& input, double lambda, size_t k) {
  const std::vector<la::Vec>& lake = *input.lake;
  double rel = 0.0;
  for (size_t i : set) rel += relevance[i];
  double div = 0.0;
  for (size_t a = 0; a + 1 < set.size(); ++a) {
    for (size_t b = a + 1; b < set.size(); ++b) {
      div += la::Distance(input.metric, lake[set[a]], lake[set[b]]);
    }
  }
  double div_weight = (k > 1) ? 2.0 * lambda / (k - 1.0) : 0.0;
  return (1.0 - lambda) * static_cast<double>(k) * rel + div_weight * div;
}

}  // namespace

std::vector<size_t> GneDiversifier::SelectDiverse(const DiversifyInput& input,
                                                  size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  const size_t s = lake.size();
  if (s == 0 || k == 0) return {};
  k = std::min(k, s);

  std::vector<float> relevance(s, 0.0f);
  if (input.query != nullptr && !input.query->empty()) {
    for (size_t i = 0; i < s; ++i) {
      relevance[i] = 1.0f - MeanDistanceToQuery(input, i);
    }
  }

  Rng rng(config_.seed);
  std::vector<size_t> best_set;
  double best_value = -std::numeric_limits<double>::infinity();

  for (size_t iteration = 0; iteration < config_.max_iterations; ++iteration) {
    // --- Randomized greedy construction ---
    std::vector<char> in_set(s, 0);
    std::vector<float> sum_to_selected(s, 0.0f);
    std::vector<size_t> current;
    current.reserve(k);
    while (current.size() < k) {
      // Score candidates by the construction-time MMC (relevance + distance
      // to current set) and pick uniformly from the top-α fraction.
      std::vector<std::pair<double, size_t>> scored;
      scored.reserve(s - current.size());
      for (size_t i = 0; i < s; ++i) {
        if (in_set[i]) continue;
        double mmc = (1.0 - config_.lambda) * relevance[i] +
                     config_.lambda * sum_to_selected[i];
        scored.emplace_back(mmc, i);
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      size_t rcl = std::max<size_t>(
          1, static_cast<size_t>(config_.rcl_alpha *
                                 static_cast<double>(scored.size())));
      size_t pick = scored[rng.NextBelow(rcl)].second;
      in_set[pick] = 1;
      current.push_back(pick);
      for (size_t j = 0; j < s; ++j) {
        if (!in_set[j]) {
          sum_to_selected[j] += la::Distance(input.metric, lake[pick], lake[j]);
        }
      }
    }

    // --- Neighborhood expansion (local search by random swaps) ---
    double value = Objective(current, relevance, input, config_.lambda, k);
    for (size_t pos = 0; pos < current.size(); ++pos) {
      for (size_t attempt = 0; attempt < config_.expansion_attempts; ++attempt) {
        size_t candidate = rng.NextBelow(s);
        if (in_set[candidate]) continue;
        size_t old = current[pos];
        current[pos] = candidate;
        double swapped = Objective(current, relevance, input, config_.lambda, k);
        if (swapped > value) {
          value = swapped;
          in_set[old] = 0;
          in_set[candidate] = 1;
        } else {
          current[pos] = old;
        }
      }
    }

    if (value > best_value) {
      best_value = value;
      best_set = current;
    }
  }
  return best_set;
}

}  // namespace dust::diversify
