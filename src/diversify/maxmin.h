// Greedy Max-Min diversification (Gonzalez-style farthest-point traversal,
// cf. Moumoulidou et al. [33]): iteratively adds the candidate whose
// minimum distance to the already-selected tuples AND the query tuples is
// largest — a 2-approximation of Max-Min diversification, and a natural
// ablation reference for DUST's Min-Diversity results.
#ifndef DUST_DIVERSIFY_MAXMIN_H_
#define DUST_DIVERSIFY_MAXMIN_H_

#include "diversify/diversifier.h"

namespace dust::diversify {

class MaxMinGreedyDiversifier : public Diversifier {
 public:
  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "MaxMin-Greedy"; }
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_MAXMIN_H_
