// Threshold-based (DisC-style) diversification — Drosou & Pitoura [9],
// discussed in Related Work: two tuples are "similar" when within a given
// distance threshold r; the result must (a) cover every input tuple by a
// similar selected tuple and (b) contain mutually dissimilar tuples — a
// maximal independent set of the r-similarity graph, greedily constructed.
//
// The paper rejects this family because the result size is dictated by r
// (and may even be empty/huge rather than k); this implementation is
// provided as the representative of that baseline class. SelectDiverse
// adapts it to the k-interface by binary-searching r until the cover has
// roughly k tuples.
#ifndef DUST_DIVERSIFY_THRESHOLD_DIV_H_
#define DUST_DIVERSIFY_THRESHOLD_DIV_H_

#include "diversify/diversifier.h"

namespace dust::diversify {

struct ThresholdConfig {
  /// Binary-search iterations when adapting r to hit k results.
  size_t search_iterations = 12;
};

class ThresholdDiversifier : public Diversifier {
 public:
  explicit ThresholdDiversifier(ThresholdConfig config = {})
      : config_(config) {}

  /// DisC with fixed radius `r`: greedy maximal independent set in
  /// first-index order; every input tuple ends up within r of a result.
  std::vector<size_t> CoverWithRadius(const DiversifyInput& input,
                                      float radius) const;

  /// k-interface adapter: binary-searches the radius, then trims/pads the
  /// cover to exactly min(k, lake size) tuples (trim: keep the cover's
  /// construction order; pad: farthest-from-result leftovers).
  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;

  std::string name() const override { return "DisC-threshold"; }

 private:
  ThresholdConfig config_;
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_THRESHOLD_DIV_H_
