// GNE — Greedy randomized with Neighborhood Expansion (Vieira et al.,
// DivDB, PVLDB'11). GRASP-style: `max_iterations` rounds of (a) randomized
// greedy construction — each step picks uniformly among the top-α fraction
// of candidates by MMC — followed by (b) local search that tries swapping
// selected items with random outsiders, keeping improvements of the MMR
// objective F(R). The repeated construction+search rounds make GNE far
// slower than GMC (Sec. 6.4.4: infeasible beyond small benchmarks).
#ifndef DUST_DIVERSIFY_GNE_H_
#define DUST_DIVERSIFY_GNE_H_

#include "diversify/diversifier.h"

namespace dust::diversify {

struct GneConfig {
  double lambda = 0.5;
  size_t max_iterations = 5;     // GRASP rounds
  double rcl_alpha = 0.15;       // restricted candidate list fraction
  size_t expansion_attempts = 4; // random swap attempts per selected item
  uint64_t seed = 31337;
};

class GneDiversifier : public Diversifier {
 public:
  explicit GneDiversifier(GneConfig config = {}) : config_(config) {}

  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "GNE"; }

 private:
  GneConfig config_;
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_GNE_H_
