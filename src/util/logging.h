// Minimal severity-filtered logger. Thread-safe: the active level is an
// atomic, and each message is flushed to stderr as one write so lines from
// concurrent threads do not interleave mid-line. The prefix carries an
// ISO-8601 UTC timestamp and a thread id so interleaved multi-threaded
// logs stay attributable.
#ifndef DUST_UTIL_LOGGING_H_
#define DUST_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dust {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Default: kInfo.
/// Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// "[<ISO-8601 UTC ms> <LEVEL> tid=<id> <file>:<line>] " — exposed for
/// tests.
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows the stream when the message is below the active level.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dust

#define DUST_LOG(level)                                                  \
  (static_cast<int>(::dust::LogLevel::k##level) <                        \
   static_cast<int>(::dust::GetLogLevel()))                              \
      ? (void)0                                                          \
      : ::dust::internal::LogSink() &                                    \
            ::dust::internal::LogMessage(::dust::LogLevel::k##level,     \
                                         __FILE__, __LINE__)             \
                .stream()

#endif  // DUST_UTIL_LOGGING_H_
