// Status / Result<T> error handling for the DUST library.
//
// The library does not throw exceptions across API boundaries (RocksDB-style
// convention). Fallible operations return a Status, or a Result<T> when they
// also produce a value. Internal invariant violations abort via DUST_CHECK.
#ifndef DUST_UTIL_STATUS_H_
#define DUST_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace dust {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  /// A dependency (remote shard, socket peer) is temporarily unreachable;
  /// the operation may succeed if retried. The only code the network
  /// router's bounded retry loop retries.
  kUnavailable,
  /// The caller's deadline expired before the operation completed. Never
  /// retried — the time budget is already spent.
  kDeadlineExceeded,
};

/// Human-readable name of a StatusCode ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error carrier. Cheap to copy when ok.
class Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error carrier. Access value() only when ok().
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or aborts with the status message (tests/benches only).
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString() << "\n";
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dust

/// Aborts the process with a diagnostic when `cond` is false. Used for
/// internal invariants that indicate programming errors, not user errors.
#define DUST_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "DUST_CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond << std::endl;                                  \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Propagates a non-ok Status from the current function.
#define DUST_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::dust::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // DUST_UTIL_STATUS_H_
