// Small string helpers shared across the library.
#ifndef DUST_UTIL_STRING_UTIL_H_
#define DUST_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dust {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` parses fully as a floating-point number (with optional sign).
bool IsNumeric(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dust

#endif  // DUST_UTIL_STRING_UTIL_H_
