#include "util/logging.h"

#include <cstring>
#include <iostream>

namespace dust {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(g_level)) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace dust
