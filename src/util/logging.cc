#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <iostream>
#include <thread>

namespace dust {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char timestamp[80];
  std::snprintf(timestamp, sizeof(timestamp),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                millis);
  // A short stable per-thread id keeps the prefix readable.
  const unsigned long tid = static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000);
  const char* base = std::strrchr(file, '/');
  char prefix[160];
  std::snprintf(prefix, sizeof(prefix), "[%s %s tid=%lu %s:%d] ", timestamp,
                LevelName(level), tid, base ? base + 1 : file, line);
  return prefix;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << FormatLogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace dust
