// Wall-clock stopwatch for the efficiency experiments (Table 2, Fig 7, A.2.3).
#ifndef DUST_UTIL_STOPWATCH_H_
#define DUST_UTIL_STOPWATCH_H_

#include <chrono>

namespace dust {

/// Starts timing on construction; `Seconds()`/`Millis()` read elapsed time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dust

#endif  // DUST_UTIL_STOPWATCH_H_
