#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace dust {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    s = SplitMix64(s);
    word = s;
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  DUST_CHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (0 - n) % n;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  DUST_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  Shuffle(&idx);
  return idx;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DUST_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, O(k) draws.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextBelow(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace dust
