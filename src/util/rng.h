// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library takes an explicit seed so that
// experiments are reproducible bit-for-bit across runs. The generator is
// xoshiro256**, seeded via SplitMix64 (both public-domain algorithms).
#ifndef DUST_UTIL_RNG_H_
#define DUST_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dust {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Returns true with probability p.
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle of [0, n) indices.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = NextBelow(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

/// SplitMix64 single step; also usable as a cheap 64-bit mixer/hash.
uint64_t SplitMix64(uint64_t x);

}  // namespace dust

#endif  // DUST_UTIL_RNG_H_
