#include "net/router_index.h"

#include <chrono>
#include <utility>

#include "io/index_io.h"
#include "obs/trace.h"
#include "serve/executor.h"

namespace dust::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

RouterIndex::RouterIndex(RouterOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<RouterIndex>> RouterIndex::Connect(
    const std::vector<std::string>& endpoints, RouterOptions options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("router needs at least one shard endpoint");
  }
  std::unique_ptr<RouterIndex> router(new RouterIndex(options));
  for (const std::string& endpoint : endpoints) {
    auto shard = std::make_unique<Shard>();
    DUST_RETURN_IF_ERROR(ParseEndpoint(endpoint, &shard->host, &shard->port));
    shard->label = shard->host + ":" + std::to_string(shard->port);
    router->shards_.push_back(std::move(shard));
  }
  // Fetch every shard's INFO and hold the topology to it: dim and metric
  // must agree or merged distances would be meaningless.
  for (size_t s = 0; s < router->shards_.size(); ++s) {
    Frame response;
    Status called = router->CallShard(s, MessageType::kInfoRequest, "",
                                      MessageType::kInfoResponse, &response);
    if (!called.ok()) {
      return Status(called.code(), "shard " + router->shards_[s]->label +
                                       ": " + called.message());
    }
    InfoMessage info;
    DUST_RETURN_IF_ERROR(DecodeInfo(response.payload, &info));
    la::Metric metric = la::Metric::kCosine;
    DUST_RETURN_IF_ERROR(io::MetricFromTag(info.metric_tag, &metric));
    if (s == 0) {
      router->dim_ = static_cast<size_t>(info.dim);
      router->metric_ = metric;
    } else if (info.dim != router->dim_ || metric != router->metric_) {
      return Status::FailedPrecondition(
          "shard " + router->shards_[s]->label +
          " disagrees with the topology on dim/metric");
    }
    router->shards_[s]->size = static_cast<size_t>(info.size);
    router->total_ += static_cast<size_t>(info.size);
  }
  return std::move(router);
}

Status RouterIndex::CallShard(size_t s, MessageType type,
                              const std::string& payload,
                              MessageType expected_response,
                              Frame* response) const {
  const Shard& shard = *shards_[s];
  Status last = Status::Ok();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    rpcs_.fetch_add(1, std::memory_order_relaxed);
    // Borrow a pooled connection or dial a fresh one.
    Connection conn;
    {
      std::lock_guard<std::mutex> lock(shard.pool_mu);
      if (!shard.pool.empty()) {
        conn = std::move(shard.pool.back());
        shard.pool.pop_back();
      }
    }
    if (!conn.valid()) {
      Result<Connection> dialed =
          Connection::Dial(shard.host, shard.port, options_.connect_timeout_ms);
      if (!dialed.ok()) {
        rpc_failures_.fetch_add(1, std::memory_order_relaxed);
        last = dialed.status();
        if (last.code() == StatusCode::kUnavailable) continue;
        return last;
      }
      conn = std::move(dialed).value();
    }
    Frame request;
    request.type = type;
    request.request_id = next_request_id_.fetch_add(1);
    request.payload = payload;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.deadline_ms);
    Status called = conn.Call(request, response, deadline);
    if (called.ok() && response->type == MessageType::kError) {
      // Application-level errors arrive on a healthy stream: keep the
      // connection, surface the envelope, and never retry (the shard
      // answered; asking again would get the same answer).
      std::lock_guard<std::mutex> lock(shard.pool_mu);
      shard.pool.push_back(std::move(conn));
      return DecodeErrorEnvelope(response->payload);
    }
    if (called.ok() && response->type != expected_response) {
      called = Status::IoError("shard answered with unexpected frame type " +
                               std::to_string(static_cast<int>(
                                   response->type)));
    }
    if (called.ok()) {
      std::lock_guard<std::mutex> lock(shard.pool_mu);
      shard.pool.push_back(std::move(conn));
      return Status::Ok();
    }
    // The connection is unusable after any transport failure.
    conn.Close();
    rpc_failures_.fetch_add(1, std::memory_order_relaxed);
    last = called;
    // A pooled connection the peer retired reads as Unavailable; the retry
    // dials fresh. Deadline and protocol errors are final.
    if (last.code() != StatusCode::kUnavailable) return last;
  }
  return last;
}

void RouterIndex::Add(const la::Vec& v) {
  (void)v;
  DUST_CHECK(false && "RouterIndex is a read-only view over remote shards");
}

Status RouterIndex::SavePayload(io::IndexWriter* writer) const {
  (void)writer;
  return Status::Unimplemented(
      "a router is a live view over remote shards; save the shards");
}

Status RouterIndex::LoadPayload(io::IndexReader* reader) {
  (void)reader;
  return Status::Unimplemented("a router cannot be loaded from a file");
}

std::string RouterIndex::name() const {
  return "Router[" + std::to_string(shards_.size()) + " shards]";
}

std::vector<index::SearchHit> RouterIndex::Search(const la::Vec& query,
                                                  size_t k) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  // Captured by value: the ParallelFor lambda re-installs it on whichever
  // pool thread runs the call so shard RPC spans parent correctly.
  const obs::TraceContext trace_ctx = obs::CurrentContext();
  SearchRequestMessage request;
  request.k = k;
  request.query = query;
  const std::string payload = EncodeSearchRequest(request);
  std::vector<std::vector<index::SearchHit>> per_shard(shards_.size());
  std::atomic<size_t> failed{0};
  auto call_one = [&](size_t s) {
    obs::ScopedTraceContext trace_scope(trace_ctx);
    obs::Span rpc_span("rpc:" + shards_[s]->label);
    const std::string* body = &payload;
    std::string traced_payload;
    if (rpc_span.recording()) {
      // Sampled: re-encode this shard's copy so the remote trace parents
      // under the RPC span. Unsampled requests share one payload.
      SearchRequestMessage traced = request;
      traced.trace_id = trace_ctx.trace_id;
      traced.parent_span_id = rpc_span.span_id();
      traced.sampled = 1;
      traced_payload = EncodeSearchRequest(traced);
      body = &traced_payload;
    }
    Frame response;
    Status called = CallShard(s, MessageType::kSearchRequest, *body,
                              MessageType::kSearchResponse, &response);
    SearchResponseMessage decoded;
    if (called.ok()) called = DecodeSearchResponse(response.payload, &decoded);
    if (called.ok()) {
      per_shard[s] = std::move(decoded.hits);
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (executor_ != nullptr && shards_.size() > 1) {
    executor_->ParallelFor(shards_.size(), call_one);
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) call_one(s);
  }
  if (failed.load() > 0) {
    partial_results_.fetch_add(1, std::memory_order_relaxed);
  }
  // Gather under the exact ShardedIndex merge semantics: hits are already
  // global ids, merged in shard order, finalized by (distance, id).
  std::vector<index::SearchHit> hits;
  hits.reserve(shards_.size() * k);
  for (const std::vector<index::SearchHit>& shard_hits : per_shard) {
    hits.insert(hits.end(), shard_hits.begin(), shard_hits.end());
  }
  index::FinalizeHits(&hits, k);
  return hits;
}

std::vector<std::vector<index::SearchHit>> RouterIndex::SearchBatch(
    const std::vector<la::Vec>& queries, size_t k,
    serve::Executor* executor) const {
  std::vector<std::vector<index::SearchHit>> results(queries.size());
  if (queries.empty()) return results;
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  const obs::TraceContext trace_ctx = obs::CurrentContext();
  SearchBatchRequestMessage request;
  request.k = k;
  request.queries = queries;
  const std::string payload = EncodeSearchBatchRequest(request);
  std::vector<std::vector<std::vector<index::SearchHit>>> per_shard(
      shards_.size());
  std::atomic<size_t> failed{0};
  auto call_one = [&](size_t s) {
    obs::ScopedTraceContext trace_scope(trace_ctx);
    obs::Span rpc_span("rpc:" + shards_[s]->label);
    const std::string* body = &payload;
    std::string traced_payload;
    if (rpc_span.recording()) {
      rpc_span.AddTag("batch", static_cast<uint64_t>(queries.size()));
      SearchBatchRequestMessage traced = request;
      traced.trace_id = trace_ctx.trace_id;
      traced.parent_span_id = rpc_span.span_id();
      traced.sampled = 1;
      traced_payload = EncodeSearchBatchRequest(traced);
      body = &traced_payload;
    }
    Frame response;
    Status called = CallShard(s, MessageType::kSearchBatchRequest, *body,
                              MessageType::kSearchBatchResponse, &response);
    SearchBatchResponseMessage decoded;
    if (called.ok()) {
      called = DecodeSearchBatchResponse(response.payload, &decoded);
    }
    if (called.ok() && decoded.results.size() != queries.size()) {
      called = Status::IoError("shard answered a different batch size");
    }
    if (called.ok()) {
      per_shard[s] = std::move(decoded.results);
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  // Unlike the in-process ShardedIndex (whose children already saturate
  // local cores), remote shards burn their own CPUs — fanning the batch out
  // across shards is pure parallelism for the router.
  if (executor != nullptr && shards_.size() > 1) {
    executor->ParallelFor(shards_.size(), call_one);
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) call_one(s);
  }
  if (failed.load() > 0) {
    partial_results_.fetch_add(queries.size(), std::memory_order_relaxed);
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<index::SearchHit> hits;
    hits.reserve(shards_.size() * k);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (per_shard[s].empty()) continue;  // shard failed: degrade
      hits.insert(hits.end(), per_shard[s][q].begin(), per_shard[s][q].end());
    }
    index::FinalizeHits(&hits, k);
    results[q] = std::move(hits);
  }
  return results;
}

RouterStats RouterIndex::stats() const {
  RouterStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.rpcs = rpcs_.load(std::memory_order_relaxed);
  stats.rpc_failures = rpc_failures_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.partial_results = partial_results_.load(std::memory_order_relaxed);
  return stats;
}

std::string RouterIndex::FederatedMetricsText() const {
  std::string out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Frame response;
    Status called = CallShard(s, MessageType::kMetricsRequest, "",
                              MessageType::kMetricsResponse, &response);
    if (!called.ok()) {
      out += "# shard " + shards_[s]->label +
             " unreachable: " + called.ToString() + "\n";
      continue;
    }
    out += "# shard " + shards_[s]->label + "\n";
    out += InjectMetricLabel(response.payload, "shard", shards_[s]->label);
  }
  return out;
}

std::string InjectMetricLabel(const std::string& text, const std::string& key,
                              const std::string& value) {
  std::string out;
  out.reserve(text.size() + 32);
  size_t pos = 0;
  const std::string injected = key + "=\"" + value + "\"";
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') {
      out += line;
      out += '\n';
      continue;
    }
    const size_t space = line.find(' ');
    const size_t brace = line.find('{');
    if (space == std::string::npos) {
      out += line;  // not a sample line; pass through untouched
      out += '\n';
      continue;
    }
    if (brace != std::string::npos && brace < space) {
      // name{labels} value -> name{key="v",labels} value
      out += line.substr(0, brace + 1);
      out += injected;
      out += ',';
      out += line.substr(brace + 1);
    } else {
      // name value -> name{key="v"} value
      out += line.substr(0, space);
      out += '{';
      out += injected;
      out += '}';
      out += line.substr(space);
    }
    out += '\n';
  }
  return out;
}

}  // namespace dust::net
