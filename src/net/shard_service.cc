#include "net/shard_service.h"

#include <chrono>
#include <utility>

#include "io/index_io.h"
#include "obs/trace.h"

namespace dust::net {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

ShardService::ShardService(std::unique_ptr<index::VectorIndex> index,
                           std::vector<size_t> global_ids, std::string label)
    : index_(std::move(index)),
      global_ids_(std::move(global_ids)),
      label_(std::move(label)),
      search_latency_ms_(serve::Histogram::LatencyBoundsMs()) {
  DUST_CHECK(index_ != nullptr);
  DUST_CHECK(global_ids_.empty() || global_ids_.size() == index_->size());
  metrics_.RegisterCounter("shard_searches_total", &searches_total_);
  metrics_.RegisterCounter("shard_batch_queries_total", &batch_queries_total_);
  metrics_.RegisterHistogram("shard_search_latency_ms", &search_latency_ms_);
  metrics_.RegisterCallback("shard_index_size", [this] {
    return static_cast<double>(index_->size());
  });
}

Status ShardService::RegisterOn(Server* server) {
  server->RegisterHandler(MessageType::kPing,
                          [this](const Frame& f) { return HandlePing(f); });
  server->RegisterHandler(MessageType::kInfoRequest,
                          [this](const Frame& f) { return HandleInfo(f); });
  server->RegisterHandler(MessageType::kSearchRequest,
                          [this](const Frame& f) { return HandleSearch(f); });
  server->RegisterHandler(
      MessageType::kSearchBatchRequest,
      [this](const Frame& f) { return HandleSearchBatch(f); });
  server->RegisterHandler(MessageType::kMetricsRequest,
                          [this](const Frame& f) { return HandleMetrics(f); });
  metrics_.RegisterCallback("net_connections_total", [server] {
    return static_cast<double>(server->connections_total().value());
  });
  metrics_.RegisterCallback("net_frames_received_total", [server] {
    return static_cast<double>(server->frames_received_total().value());
  });
  metrics_.RegisterCallback("net_frames_sent_total", [server] {
    return static_cast<double>(server->frames_sent_total().value());
  });
  metrics_.RegisterCallback("net_errors_total", [server] {
    return static_cast<double>(server->errors_total().value());
  });
  metrics_.RegisterCallback("net_open_sessions", [server] {
    return static_cast<double>(server->open_sessions());
  });
  return Status::Ok();
}

void ShardService::RemapHits(std::vector<index::SearchHit>* hits) const {
  if (global_ids_.empty()) return;
  for (index::SearchHit& hit : *hits) {
    DUST_CHECK(hit.id < global_ids_.size());
    hit.id = global_ids_[hit.id];
  }
}

Result<Frame> ShardService::HandlePing(const Frame& request) {
  Frame response;
  response.type = MessageType::kPong;
  response.payload = request.payload;  // echo body, useful for probes
  return response;
}

Result<Frame> ShardService::HandleInfo(const Frame& request) {
  (void)request;
  InfoMessage info;
  info.dim = index_->dim();
  info.size = index_->size();
  info.metric_tag = io::MetricTag(index_->metric());
  info.index_type = index_->type_tag();
  info.shard_label = label_;
  Frame response;
  response.type = MessageType::kInfoResponse;
  response.payload = EncodeInfo(info);
  return response;
}

Result<Frame> ShardService::HandleSearch(const Frame& request) {
  SearchRequestMessage msg;
  DUST_RETURN_IF_ERROR(DecodeSearchRequest(request.payload, &msg));
  if (msg.query.size() != index_->dim()) {
    return Status::InvalidArgument(
        "query dim " + std::to_string(msg.query.size()) +
        " != index dim " + std::to_string(index_->dim()));
  }
  // Continue the router's trace: the parent span id on the wire is the
  // router-side RPC span, so one trace_id stitches both processes.
  obs::ScopedTraceContext trace_scope(
      obs::TraceContext{msg.trace_id, msg.parent_span_id, msg.sampled != 0});
  obs::Span span("shard:search");
  const auto start = Clock::now();
  SearchResponseMessage out;
  out.hits = index_->Search(msg.query, static_cast<size_t>(msg.k));
  RemapHits(&out.hits);
  searches_total_.Increment();
  search_latency_ms_.Record(MillisSince(start));
  Frame response;
  response.type = MessageType::kSearchResponse;
  response.payload = EncodeSearchResponse(out);
  return response;
}

Result<Frame> ShardService::HandleSearchBatch(const Frame& request) {
  SearchBatchRequestMessage msg;
  DUST_RETURN_IF_ERROR(DecodeSearchBatchRequest(request.payload, &msg));
  for (const la::Vec& query : msg.queries) {
    if (query.size() != index_->dim()) {
      return Status::InvalidArgument(
          "batch query dim " + std::to_string(query.size()) +
          " != index dim " + std::to_string(index_->dim()));
    }
  }
  obs::ScopedTraceContext trace_scope(
      obs::TraceContext{msg.trace_id, msg.parent_span_id, msg.sampled != 0});
  obs::Span span("shard:search_batch");
  span.AddTag("batch", static_cast<uint64_t>(msg.queries.size()));
  const auto start = Clock::now();
  SearchBatchResponseMessage out;
  // No executor here on purpose: handler tasks already run on the server's
  // shared pool; a nested fan-out per request would oversubscribe it.
  out.results.reserve(msg.queries.size());
  for (const la::Vec& query : msg.queries) {
    std::vector<index::SearchHit> hits =
        index_->Search(query, static_cast<size_t>(msg.k));
    RemapHits(&hits);
    out.results.push_back(std::move(hits));
  }
  batch_queries_total_.Increment(msg.queries.size());
  search_latency_ms_.Record(MillisSince(start));
  Frame response;
  response.type = MessageType::kSearchBatchResponse;
  response.payload = EncodeSearchBatchResponse(out);
  return response;
}

Result<Frame> ShardService::HandleMetrics(const Frame& request) {
  (void)request;
  Frame response;
  response.type = MessageType::kMetricsResponse;
  response.payload = metrics_.RenderText();
  return response;
}

}  // namespace dust::net
