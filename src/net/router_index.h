// Router over remote shard servers — index::VectorIndex across machines.
//
// A RouterIndex fans each query out to N shard endpoints (dust_shardd
// processes serving one DUSTSHRD shard each) and k-way merges the hits
// under the exact FinalizeHits semantics shard::ShardedIndex pins: shard
// servers answer with globally-remapped ids and raw float distance bits,
// hits merge in endpoint order, ties break by ascending global id — so the
// merged result is bit-identical to the in-process ShardedIndex over the
// same vectors when every shard answers.
//
// Failure model: every RPC carries a per-shard deadline; kUnavailable
// failures (refused connect, reset, clean close) get a bounded retry on a
// fresh connection, DeadlineExceeded and protocol errors do not. A shard
// that stays down degrades the query instead of failing it: its hits are
// simply missing from the merge, the query is counted in
// stats().partial_results, and serving continues on the surviving shards —
// the partial-result contract the distributed-smoke CI job exercises by
// killing a shard mid-run.
#ifndef DUST_NET_ROUTER_INDEX_H_
#define DUST_NET_ROUTER_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "net/connection.h"
#include "net/frame.h"

namespace dust::net {

struct RouterOptions {
  /// Bounded connect handshake per dial.
  int connect_timeout_ms = 2000;
  /// Per-shard RPC deadline (write + read of one call).
  int deadline_ms = 5000;
  /// Total attempts per RPC: 1 try + (max_attempts - 1) retries, each on a
  /// fresh connection. Only kUnavailable failures are retried.
  int max_attempts = 2;
};

/// Lifetime counters of one router (all monotone, readable concurrently).
struct RouterStats {
  uint64_t queries = 0;          ///< Search calls + SearchBatch entries routed
  uint64_t rpcs = 0;             ///< attempts sent (retries included)
  uint64_t rpc_failures = 0;     ///< attempts that failed
  uint64_t retries = 0;          ///< follow-up attempts after kUnavailable
  uint64_t partial_results = 0;  ///< queries answered with >=1 shard missing
};

class RouterIndex : public index::VectorIndex {
 public:
  /// Dials every endpoint ("host:port", in shard order — the merge order),
  /// fetches its INFO, and validates the topology: every shard must agree
  /// on dim and metric. Strict by design: a topology that is already
  /// missing a shard serves silently-wrong "complete" results, so Connect
  /// fails instead; shards may die later and degrade to partial results.
  static Result<std::unique_ptr<RouterIndex>> Connect(
      const std::vector<std::string>& endpoints, RouterOptions options = {});

  /// Scatter-gather over the remote shards. With an executor installed
  /// (SetExecutor) the fan-out runs on pooled threads; otherwise shards are
  /// called sequentially. Hits from shards that failed (after retry) are
  /// missing from the merge — check stats().partial_results.
  std::vector<index::SearchHit> Search(const la::Vec& query,
                                       size_t k) const override;
  using index::VectorIndex::SearchBatch;
  /// One batched RPC per shard (the whole micro-batch crosses the wire
  /// once), fanned out across shards on `executor`, merged per query.
  std::vector<std::vector<index::SearchHit>> SearchBatch(
      const std::vector<la::Vec>& queries, size_t k,
      serve::Executor* executor) const override;

  /// The router serves a frozen remote lake; building happens shard-side.
  void Add(const la::Vec& v) override;

  /// Removals also happen shard-side (delete + re-save + restart the
  /// shard); the router's view is read-only, so these refuse instead of
  /// mutating a mapping the remote shards would never see.
  bool Remove(size_t /*id*/) override { return false; }
  size_t RemoveAll(const std::vector<size_t>& /*ids*/) override { return 0; }

  size_t size() const override { return total_; }
  size_t dim() const override { return dim_; }
  std::string name() const override;
  la::Metric metric() const override { return metric_; }
  std::string type_tag() const override { return "router"; }

  /// A router is a view over remote state; persist the shards instead.
  Status SavePayload(io::IndexWriter* writer) const override;
  Status LoadPayload(io::IndexReader* reader) override;

  size_t num_shards() const { return shards_.size(); }
  const std::string& endpoint(size_t s) const { return shards_[s]->label; }
  /// Vectors reported by shard `s` at Connect time.
  size_t shard_size(size_t s) const { return shards_[s]->size; }

  RouterStats stats() const;

  /// Scrapes every shard's METRICS RPC and federates the texts into one
  /// exposition: each shard's series gets a shard="host:port" label
  /// injected, unreachable shards become a comment line instead of failing
  /// the whole scrape.
  std::string FederatedMetricsText() const;

 private:
  struct Shard {
    std::string host;
    uint16_t port = 0;
    std::string label;  ///< "host:port", the merge-order identity
    size_t size = 0;
    /// Idle pooled connections, reused across RPCs (mutable: Search is
    /// const but borrows/returns connections).
    mutable std::mutex pool_mu;
    mutable std::vector<Connection> pool;
  };

  RouterIndex(RouterOptions options);

  /// One RPC against shard `s` with the configured deadline and bounded
  /// retry; on success the connection returns to the shard's pool.
  Status CallShard(size_t s, MessageType type, const std::string& payload,
                   MessageType expected_response, Frame* response) const;

  RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t dim_ = 0;
  size_t total_ = 0;
  la::Metric metric_ = la::Metric::kCosine;
  mutable std::atomic<uint64_t> next_request_id_{1};

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rpcs_{0};
  mutable std::atomic<uint64_t> rpc_failures_{0};
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> partial_results_{0};
};

/// Rewrites a Prometheus-style exposition so every series carries
/// `key="value"` as its first label (merging with existing label sets).
/// Comment and blank lines pass through. Exposed for the router's metric
/// federation and its tests.
std::string InjectMetricLabel(const std::string& text, const std::string& key,
                              const std::string& value);

}  // namespace dust::net

#endif  // DUST_NET_ROUTER_INDEX_H_
