// Frame server — the accept/session half of the distributed serving tier.
//
// One event-loop thread owns the listening socket and every session fd
// (NebulaFS-style router/session split): it accepts connections, reassembles
// length-prefixed frames from nonblocking reads, and dispatches each
// complete request onto the shared serve::Executor, so session concurrency
// costs no thread-per-connection and search work lands on the same pool the
// in-process serving path uses. Handler tasks write their response (or a
// typed kError envelope echoing the request id) back through a
// per-session write lock, so concurrent handlers on one connection cannot
// interleave bytes.
//
// Protocol corruption on a session (bad magic, oversized length, unknown
// type) is unrecoverable — the stream cannot be resynced — so the server
// answers with a best-effort error envelope and closes that session; other
// sessions are unaffected.
#ifndef DUST_NET_SERVER_H_
#define DUST_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "serve/metrics.h"
#include "util/status.h"

namespace dust::serve {
class Executor;
}  // namespace dust::serve

namespace dust::net {

class Server {
 public:
  /// Computes the response frame for one request. The frame's request_id is
  /// overwritten with the request's id before sending (the echo contract);
  /// returning a non-ok Status sends a kError envelope instead. Handlers
  /// run concurrently (on the executor) and must be thread-safe.
  using Handler = std::function<Result<Frame>(const Frame& request)>;

  /// `executor` runs handler tasks; nullptr runs them inline on the event
  /// loop thread (deterministic tests, no concurrency). Must outlive the
  /// server.
  explicit Server(serve::Executor* executor);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers the handler for one message type. Must be called before
  /// Start (the map is read without a lock once the loop runs).
  void RegisterHandler(MessageType type, Handler handler);

  /// Binds host:port (port 0 picks a free port — see port()) and starts the
  /// event loop.
  Status Start(const std::string& host, uint16_t port);

  /// The actually bound port (resolves port 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every session, joins the event loop, and waits
  /// for in-flight handler tasks to finish, so no task can touch the server
  /// after this returns. Idempotent; called by the destructor.
  void Shutdown();

  /// Observability counters, registered into a serve::Metrics registry by
  /// the component embedding this server (e.g. ShardService).
  const serve::Counter& connections_total() const {
    return connections_total_;
  }
  const serve::Counter& frames_received_total() const {
    return frames_received_total_;
  }
  const serve::Counter& frames_sent_total() const {
    return frames_sent_total_;
  }
  const serve::Counter& errors_total() const { return errors_total_; }
  /// Sessions currently open (pull-gauge for the scrape).
  size_t open_sessions() const;

 private:
  /// One accepted connection: the event loop owns the read side (buffer
  /// reassembly); handler tasks share the write side under `write_mu`.
  struct Session {
    int fd = -1;
    std::string inbuf;
    std::mutex write_mu;
    bool closed = false;  // guarded by write_mu
  };

  void EventLoop();
  void AcceptPending();
  /// Reads available bytes; false when the session hit EOF/error and must
  /// be retired.
  bool ReadPending(const std::shared_ptr<Session>& session);
  void DispatchFrame(const std::shared_ptr<Session>& session, Frame frame);
  void HandleFrame(const std::shared_ptr<Session>& session,
                   const Frame& request);
  void WriteResponse(const std::shared_ptr<Session>& session,
                     const Frame& response);
  static void CloseSession(const std::shared_ptr<Session>& session);
  void WakeLoop();

  serve::Executor* executor_;
  std::map<MessageType, Handler> handlers_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: Shutdown wakes the poll
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread loop_;

  mutable std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;

  std::mutex inflight_mu_;
  std::condition_variable inflight_done_;
  size_t inflight_ = 0;

  serve::Counter connections_total_;
  serve::Counter frames_received_total_;
  serve::Counter frames_sent_total_;
  serve::Counter errors_total_;
};

}  // namespace dust::net

#endif  // DUST_NET_SERVER_H_
