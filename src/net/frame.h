// Length-prefixed binary framing for the distributed serving tier.
//
// Everything that crosses a socket between the router and a shard server is
// one frame:
//
//   frame   := magic:u32 type:u8 request_id:u64 payload_len:u32 payload
//
// in host byte order (little-endian on every supported target), mirroring
// the io:: index format's portability contract. The request id is chosen by
// the client and echoed verbatim in the response (including error
// envelopes), so a router can correlate replies and log failures by id.
// payload_len is validated against kMaxFramePayload before any allocation —
// a corrupt or hostile length field yields Status::IoError, never a
// multi-gigabyte allocation or an overflow.
//
// Payload layouts are defined by the typed message structs below plus their
// Encode/Decode pairs; decoding validates every count against the bytes
// actually present. Errors travel as a kError frame whose payload is a
// status envelope (wire code + message) carrying the request id of the
// call that failed.
#ifndef DUST_NET_FRAME_H_
#define DUST_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "la/distance.h"
#include "la/vector_ops.h"
#include "util/status.h"

namespace dust::net {

/// First 4 bytes of every frame ("DNET" read as a little-endian u32).
inline constexpr uint32_t kFrameMagic = 0x54454E44u;

/// Hard ceiling on a frame payload. Large enough for a 64k-hit batch
/// response, small enough that a corrupt length field cannot OOM a server.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Serialized frame header size (magic + type + request id + payload len).
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;

/// Wire message types. Values are on-the-wire tags — never reorder or reuse
/// existing ones.
enum class MessageType : uint8_t {
  kPing = 1,
  kPong = 2,
  kInfoRequest = 3,
  kInfoResponse = 4,
  kSearchRequest = 5,
  kSearchResponse = 6,
  kSearchBatchRequest = 7,
  kSearchBatchResponse = 8,
  kMetricsRequest = 9,
  kMetricsResponse = 10,
  kError = 11,
};

/// True when `tag` is a MessageType this build understands. Unknown tags on
/// the wire are protocol corruption, not forward compatibility.
bool IsKnownMessageType(uint8_t tag);

/// One framed message. `payload` is the raw encoded body for `type`.
struct Frame {
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Header fields decoded from the first kFrameHeaderBytes of a frame.
struct FrameHeader {
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// Serializes header + payload. The payload must fit kMaxFramePayload
/// (DUST_CHECK — building an oversized frame is a programming error; the
/// receive side treats it as data corruption).
std::string EncodeFrame(const Frame& frame);

/// Decodes and validates `data` (exactly kFrameHeaderBytes): magic, known
/// type, payload_len <= kMaxFramePayload. IoError on any violation.
Status DecodeFrameHeader(const char* data, FrameHeader* header);

/// Appending cursor for payload bodies. Like io::IndexWriter but in-memory:
/// writes never fail, the result is moved out once.
class PayloadWriter {
 public:
  void PutU8(uint8_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutFloat(float v) { PutRaw(&v, sizeof(v)); }
  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s);
  /// Length-prefixed (u32) float vector, raw bits — bit-exact round trip.
  void PutVec(const la::Vec& v);

  std::string Take() { return std::move(out_); }

 private:
  void PutRaw(const void* data, size_t n);

  std::string out_;
};

/// Bounds-checked reading cursor over a payload. Every Get validates
/// against the bytes remaining, so truncated or corrupt payloads surface as
/// IoError instead of out-of-bounds reads; counts are validated the same
/// way io::IndexReader::ReadCount bounds file counts.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload)
      : data_(payload.data()), remaining_(payload.size()) {}

  size_t remaining() const { return remaining_; }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetFloat(float* v) { return GetRaw(v, sizeof(*v)); }
  Status GetString(std::string* s);
  /// Reads a length-prefixed vector; when dim > 0 the length must be
  /// exactly dim.
  Status GetVec(la::Vec* v, size_t dim);
  /// Reads a u32 element count, rejecting it unless count * elem_size bytes
  /// remain.
  Status GetCount(size_t elem_size, uint32_t* count);

 private:
  Status GetRaw(void* out, size_t n);

  const char* data_;
  size_t remaining_;
};

// --- typed messages --------------------------------------------------------

/// kInfoResponse: what a shard server is serving. The router validates that
/// every shard agrees on dim/metric before accepting the topology.
struct InfoMessage {
  uint64_t dim = 0;
  uint64_t size = 0;         ///< vectors served by this shard
  uint8_t metric_tag = 0;    ///< io::MetricTag encoding
  std::string index_type;    ///< child index type_tag ("flat", "hnsw", ...)
  std::string shard_label;   ///< diagnostic name ("shard2", path, ...)
};

/// kSearchRequest: one query vector, top-k. The trace fields ride first in
/// the payload: `trace_id`/`parent_span_id` continue the router-side trace
/// on the shard (the parent is the router's per-shard RPC span), `sampled`
/// (any nonzero byte) tells the shard to record spans. Untraced requests
/// send zeros.
struct SearchRequestMessage {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint8_t sampled = 0;
  uint64_t k = 0;
  la::Vec query;
};

/// kSearchResponse / one entry of kSearchBatchResponse: hits with ids
/// already remapped to global lake ids by the shard server, distances as
/// raw float bits (bit-identical across the wire).
struct SearchResponseMessage {
  std::vector<index::SearchHit> hits;
};

/// kSearchBatchRequest: the whole micro-batch in one frame, one k. Trace
/// fields as in SearchRequestMessage (one context per frame — the batch
/// is traced under its owning request).
struct SearchBatchRequestMessage {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint8_t sampled = 0;
  uint64_t k = 0;
  std::vector<la::Vec> queries;
};

struct SearchBatchResponseMessage {
  std::vector<std::vector<index::SearchHit>> results;
};

/// kError payload: the typed status envelope. `code` is the wire encoding
/// of StatusCode (see StatusCodeToWire); the request id travels in the
/// frame header like every other response.
struct ErrorEnvelope {
  uint8_t code = 0;
  std::string message;
};

/// StatusCode <-> wire tag. Explicit mapping so reordering the enum can
/// never silently change the protocol; unknown wire tags decode to
/// kInternal rather than failing (an error report must not eat the error).
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t tag);

std::string EncodeInfo(const InfoMessage& m);
Status DecodeInfo(const std::string& payload, InfoMessage* m);

std::string EncodeSearchRequest(const SearchRequestMessage& m);
Status DecodeSearchRequest(const std::string& payload, SearchRequestMessage* m);

std::string EncodeSearchResponse(const SearchResponseMessage& m);
Status DecodeSearchResponse(const std::string& payload,
                            SearchResponseMessage* m);

std::string EncodeSearchBatchRequest(const SearchBatchRequestMessage& m);
Status DecodeSearchBatchRequest(const std::string& payload,
                                SearchBatchRequestMessage* m);

std::string EncodeSearchBatchResponse(const SearchBatchResponseMessage& m);
Status DecodeSearchBatchResponse(const std::string& payload,
                                 SearchBatchResponseMessage* m);

/// Builds the kError frame answering `request_id` with `status`.
Frame MakeErrorFrame(uint64_t request_id, const Status& status);
/// Decodes a kError payload back into the Status it carried.
Status DecodeErrorEnvelope(const std::string& payload);

}  // namespace dust::net

#endif  // DUST_NET_FRAME_H_
