// Deadline-aware framed connection over a POSIX stream socket.
//
// A Connection owns one nonblocking fd and moves whole net::Frame messages
// across it. Every blocking point (connect, read, write) is bounded by a
// caller-supplied steady_clock deadline via poll(), so a hung peer costs at
// most the deadline, never a stuck thread. Status taxonomy, which the
// router's retry policy keys on:
//
//   - Unavailable:      the peer cannot be reached or closed the connection
//                       cleanly between frames — transient, safe to retry
//                       against a fresh connection;
//   - DeadlineExceeded: the deadline expired mid-operation — the time
//                       budget is spent, never retried;
//   - IoError:          protocol corruption (bad magic, oversized length,
//                       a frame truncated mid-read) — retrying the same
//                       bytes cannot help.
#ifndef DUST_NET_CONNECTION_H_
#define DUST_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "net/frame.h"
#include "util/status.h"

namespace dust::net {

/// Splits "host:port" (e.g. "127.0.0.1:7070"); InvalidArgument for a
/// missing colon, empty host, or a port outside [1, 65535].
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port);

class Connection {
 public:
  /// An invalid (unconnected) connection; valid() is false.
  Connection() = default;
  /// Adopts an already-connected stream fd (e.g. one end of a socketpair in
  /// tests, or an accepted server socket). The fd is switched to
  /// nonblocking and closed by the destructor.
  explicit Connection(int fd);
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connects to host:port with a bounded handshake; Unavailable when the
  /// peer refuses or the timeout expires (a slow connect is as transient as
  /// a refused one — the topology may simply still be starting).
  static Result<Connection> Dial(const std::string& host, uint16_t port,
                                 int connect_timeout_ms);

  bool valid() const { return fd_ >= 0; }
  /// The owned fd, -1 when invalid (tests inject raw bytes through it).
  int fd() const { return fd_; }

  /// Sends one whole frame before `deadline`. DeadlineExceeded when the
  /// socket stays backpressured past it; Unavailable when the peer reset.
  Status WriteFrame(const Frame& frame,
                    std::chrono::steady_clock::time_point deadline);

  /// Receives one whole frame before `deadline`. A clean close before any
  /// byte of the frame is Unavailable (idle connection retired by the
  /// peer); a close or error after the frame started is IoError (torn
  /// frame); corrupt headers are IoError; a quiet socket past the deadline
  /// is DeadlineExceeded.
  Status ReadFrame(Frame* frame,
                   std::chrono::steady_clock::time_point deadline);

  /// Write + read one round trip, verifying the response echoes the
  /// request id (a mismatched echo is IoError — the stream is desynced and
  /// the connection unusable).
  Status Call(const Frame& request, Frame* response,
              std::chrono::steady_clock::time_point deadline);

  void Close();

 private:
  Status ReadExact(char* out, size_t n,
                   std::chrono::steady_clock::time_point deadline,
                   bool* clean_close_before_first_byte);

  int fd_ = -1;
};

}  // namespace dust::net

#endif  // DUST_NET_CONNECTION_H_
