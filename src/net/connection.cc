#include "net/connection.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

namespace dust::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds until `deadline` clamped to [0, INT_MAX] for poll().
int MillisUntil(Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (remaining.count() <= 0) return 0;
  if (remaining.count() > 60'000) return 60'000;  // poll in bounded slices
  return static_cast<int>(remaining.count());
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

/// Waits for `events` on fd until the deadline; DeadlineExceeded when it
/// passes first. Retries EINTR.
Status WaitFor(int fd, short events, Clock::time_point deadline,
               const char* what) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout = MillisUntil(deadline);
    if (timeout == 0 && Clock::now() >= deadline) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " deadline expired");
    }
    const int n = ::poll(&pfd, 1, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) continue;  // re-check the deadline at the top
    return Status::Ok();   // readable/writable (or error, surfaced by the op)
  }
}

}  // namespace

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("endpoint must be host:port, got: " +
                                   endpoint);
  }
  uint32_t value = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("endpoint port is not numeric: " +
                                     endpoint);
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) {
      return Status::InvalidArgument("endpoint port out of range: " +
                                     endpoint);
    }
  }
  if (value == 0) {
    return Status::InvalidArgument("endpoint port must be >= 1: " + endpoint);
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

Connection::Connection(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNonBlocking(fd_);  // best effort; ops surface failures
}

Connection::~Connection() { Close(); }

Connection::Connection(Connection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Connection> Connection::Dial(const std::string& host, uint16_t port,
                                    int connect_timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  Connection conn(fd);  // owns the fd (and makes it nonblocking) from here
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(connect_timeout_ms);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    }
    // A slow connect is bounded like every other wait, but reported as
    // Unavailable: "still starting" and "not there" are the same to a
    // retry policy.
    Status waited = WaitFor(fd, POLLOUT, deadline, "connect");
    if (!waited.ok()) {
      if (waited.code() == StatusCode::kDeadlineExceeded) {
        return Status::Unavailable("connect " + host + ":" +
                                   std::to_string(port) + " timed out");
      }
      return waited;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  return std::move(conn);
}

Status Connection::WriteFrame(const Frame& frame,
                              Clock::time_point deadline) {
  if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
  const std::string bytes = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      DUST_RETURN_IF_ERROR(WaitFor(fd_, POLLOUT, deadline, "write"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status Connection::ReadExact(char* out, size_t n, Clock::time_point deadline,
                             bool* clean_close_before_first_byte) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (clean_close_before_first_byte != nullptr && got == 0) {
        *clean_close_before_first_byte = true;
        return Status::Unavailable("connection closed by peer");
      }
      return Status::IoError("frame truncated: peer closed after " +
                             std::to_string(got) + " of " +
                             std::to_string(n) + " bytes");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DUST_RETURN_IF_ERROR(WaitFor(fd_, POLLIN, deadline, "read"));
      continue;
    }
    if (errno == EINTR) continue;
    if (got == 0 && clean_close_before_first_byte != nullptr) {
      *clean_close_before_first_byte = true;
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status Connection::ReadFrame(Frame* frame, Clock::time_point deadline) {
  if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
  char header_bytes[kFrameHeaderBytes];
  bool clean_close = false;
  // A close at a frame boundary is a retired connection (Unavailable); one
  // inside the header or payload is a torn frame (IoError).
  DUST_RETURN_IF_ERROR(
      ReadExact(header_bytes, sizeof(header_bytes), deadline, &clean_close));
  FrameHeader header;
  DUST_RETURN_IF_ERROR(DecodeFrameHeader(header_bytes, &header));
  frame->type = header.type;
  frame->request_id = header.request_id;
  frame->payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    DUST_RETURN_IF_ERROR(
        ReadExact(frame->payload.data(), header.payload_len, deadline,
                  nullptr));
  }
  return Status::Ok();
}

Status Connection::Call(const Frame& request, Frame* response,
                        Clock::time_point deadline) {
  DUST_RETURN_IF_ERROR(WriteFrame(request, deadline));
  DUST_RETURN_IF_ERROR(ReadFrame(response, deadline));
  if (response->request_id != request.request_id) {
    // The stream is answering some other call; nothing on it can be
    // trusted any more.
    return Status::IoError(
        "response id " + std::to_string(response->request_id) +
        " does not echo request id " + std::to_string(request.request_id));
  }
  return Status::Ok();
}

}  // namespace dust::net
