// Shard-side RPC service: one VectorIndex behind a frame Server.
//
// A ShardService owns one loaded index (typically one shard taken out of a
// saved DUSTSHRD file) plus its local->global id mapping, and registers the
// five shard RPCs on a net::Server: PING, INFO, SEARCH, SEARCH_BATCH, and
// METRICS. Search responses carry globally-remapped ids and raw float
// distance bits, so the router's merge is bit-identical to the in-process
// ShardedIndex gather over the same vectors.
#ifndef DUST_NET_SHARD_SERVICE_H_
#define DUST_NET_SHARD_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "net/server.h"
#include "serve/metrics.h"
#include "util/status.h"

namespace dust::net {

class ShardService {
 public:
  /// `global_ids` maps the index's local row ids to lake-global ids; empty
  /// means identity (serving a standalone, unsharded index). `label` names
  /// this shard in INFO responses and diagnostics.
  ShardService(std::unique_ptr<index::VectorIndex> index,
               std::vector<size_t> global_ids, std::string label);

  ShardService(const ShardService&) = delete;
  ShardService& operator=(const ShardService&) = delete;

  /// Registers this service's handlers on `server` (before server->Start)
  /// and folds the server's transport counters into the metrics registry.
  /// The service must outlive the server's Shutdown.
  Status RegisterOn(Server* server);

  const index::VectorIndex& index() const { return *index_; }
  const std::string& label() const { return label_; }
  serve::Metrics& metrics() { return metrics_; }

 private:
  Result<Frame> HandlePing(const Frame& request);
  Result<Frame> HandleInfo(const Frame& request);
  Result<Frame> HandleSearch(const Frame& request);
  Result<Frame> HandleSearchBatch(const Frame& request);
  Result<Frame> HandleMetrics(const Frame& request);

  /// Remaps one hit list local -> global in place.
  void RemapHits(std::vector<index::SearchHit>* hits) const;

  std::unique_ptr<index::VectorIndex> index_;
  std::vector<size_t> global_ids_;  // empty = identity mapping
  std::string label_;

  serve::Metrics metrics_;
  serve::Counter searches_total_;
  serve::Counter batch_queries_total_;
  serve::Histogram search_latency_ms_;
};

}  // namespace dust::net

#endif  // DUST_NET_SHARD_SERVICE_H_
