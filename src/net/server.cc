#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "serve/executor.h"

namespace dust::net {

namespace {

/// Responses are written by handler tasks with this bound so one dead
/// client draining nothing can stall a pool thread for at most this long.
constexpr std::chrono::seconds kWriteDeadline(10);

void MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(serve::Executor* executor) : executor_(executor) {}

Server::~Server() { Shutdown(); }

void Server::RegisterHandler(MessageType type, Handler handler) {
  DUST_CHECK(!loop_.joinable() && "register handlers before Start");
  handlers_[type] = std::move(handler);
}

Status Server::Start(const std::string& host, uint16_t port) {
  DUST_CHECK(!loop_.joinable() && "server already started");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const Status failed = Status::Unavailable(
        "bind " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status failed =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  MakeNonBlocking(listen_fd_);
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    const Status failed =
        Status::Internal(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  MakeNonBlocking(wake_read_fd_);
  stopping_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

void Server::WakeLoop() {
  if (wake_write_fd_ >= 0) {
    const char byte = 'w';
    // A full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::Shutdown() {
  if (!loop_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  loop_.join();
  // The loop no longer reads; retire every session so handler tasks that
  // are still running see `closed` and drop their responses.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (const std::shared_ptr<Session>& session : sessions) {
    CloseSession(session);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  if (wake_write_fd_ >= 0) {
    ::close(wake_write_fd_);
    wake_write_fd_ = -1;
  }
  // Executor tasks capture `this` (handlers, counters); they must all be
  // done before the server can be destroyed.
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_done_.wait(lock, [this] { return inflight_ == 0; });
}

size_t Server::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void Server::CloseSession(const std::shared_ptr<Session>& session) {
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (!session->closed) {
    session->closed = true;
    ::close(session->fd);
    session->fd = -1;
  }
}

void Server::EventLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<std::shared_ptr<Session>> sessions;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions = sessions_;
    }
    std::vector<struct pollfd> pfds;
    pfds.reserve(sessions.size() + 2);
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const std::shared_ptr<Session>& session : sessions) {
      pfds.push_back({session->fd, POLLIN, 0});
    }
    const int n = ::poll(pfds.data(), pfds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // poll itself failed; nothing sane left to do
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    if (pfds[1].revents != 0) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[0].revents != 0) AcceptPending();
    std::vector<std::shared_ptr<Session>> dead;
    for (size_t i = 0; i < sessions.size(); ++i) {
      if (pfds[i + 2].revents == 0) continue;
      if (!ReadPending(sessions[i])) dead.push_back(sessions[i]);
    }
    if (!dead.empty()) {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const std::shared_ptr<Session>& session : dead) {
        CloseSession(session);
        for (size_t i = 0; i < sessions_.size(); ++i) {
          if (sessions_[i] == session) {
            sessions_.erase(sessions_.begin() + i);
            break;
          }
        }
      }
    }
  }
}

void Server::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN: drained; other errors: try again later
    MakeNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    connections_total_.Increment();
  }
}

bool Server::ReadPending(const std::shared_ptr<Session>& session) {
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      session->inbuf.append(chunk, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // Reassemble every complete frame sitting in the buffer.
  while (session->inbuf.size() >= kFrameHeaderBytes) {
    FrameHeader header;
    Status decoded = DecodeFrameHeader(session->inbuf.data(), &header);
    if (!decoded.ok()) {
      // The stream cannot be resynced after garbage; answer with a typed
      // envelope (request id 0 — the real one is unknowable) and retire
      // the session.
      errors_total_.Increment();
      WriteResponse(session, MakeErrorFrame(0, decoded));
      return false;
    }
    const size_t total = kFrameHeaderBytes + header.payload_len;
    if (session->inbuf.size() < total) break;  // torn: wait for the rest
    Frame frame;
    frame.type = header.type;
    frame.request_id = header.request_id;
    frame.payload = session->inbuf.substr(kFrameHeaderBytes,
                                          header.payload_len);
    session->inbuf.erase(0, total);
    frames_received_total_.Increment();
    DispatchFrame(session, std::move(frame));
  }
  return true;
}

void Server::DispatchFrame(const std::shared_ptr<Session>& session,
                           Frame frame) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  auto task = [this, session, frame = std::move(frame)]() {
    HandleFrame(session, frame);
    // Notify while holding the lock: the moment the Shutdown() waiter can
    // re-check the predicate and see inflight_ == 0 (a spurious wakeup
    // suffices), the Server — condvar included — may be destroyed, so the
    // notify must not be reachable after the unlock.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
    inflight_done_.notify_all();
  };
  if (executor_ != nullptr) {
    executor_->Submit(std::move(task));
  } else {
    task();
  }
}

void Server::HandleFrame(const std::shared_ptr<Session>& session,
                         const Frame& request) {
  auto it = handlers_.find(request.type);
  if (it == handlers_.end()) {
    errors_total_.Increment();
    WriteResponse(session,
                  MakeErrorFrame(request.request_id,
                                 Status::Unimplemented(
                                     "no handler for frame type " +
                                     std::to_string(static_cast<int>(
                                         request.type)))));
    return;
  }
  Result<Frame> response = it->second(request);
  if (!response.ok()) {
    errors_total_.Increment();
    WriteResponse(session,
                  MakeErrorFrame(request.request_id, response.status()));
    return;
  }
  Frame frame = std::move(response).value();
  frame.request_id = request.request_id;  // the echo contract
  WriteResponse(session, frame);
}

void Server::WriteResponse(const std::shared_ptr<Session>& session,
                           const Frame& response) {
  const std::string bytes = EncodeFrame(response);
  const auto deadline = std::chrono::steady_clock::now() + kWriteDeadline;
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->closed) return;  // raced with shutdown/retirement: drop
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(session->fd, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd{session->fd, POLLOUT, 0};
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return;  // dead client: drop the response
      if (::poll(&pfd, 1, static_cast<int>(remaining.count())) < 0 &&
          errno != EINTR) {
        return;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // reset mid-write: the peer is gone, nothing to salvage
  }
  frames_sent_total_.Increment();
}

}  // namespace dust::net
