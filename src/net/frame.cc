#include "net/frame.h"

#include <cstring>

namespace dust::net {

bool IsKnownMessageType(uint8_t tag) {
  return tag >= static_cast<uint8_t>(MessageType::kPing) &&
         tag <= static_cast<uint8_t>(MessageType::kError);
}

std::string EncodeFrame(const Frame& frame) {
  DUST_CHECK(frame.payload.size() <= kMaxFramePayload);
  PayloadWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(static_cast<uint8_t>(frame.type));
  w.PutU64(frame.request_id);
  w.PutU32(static_cast<uint32_t>(frame.payload.size()));
  std::string out = w.Take();
  out += frame.payload;
  return out;
}

Status DecodeFrameHeader(const char* data, FrameHeader* header) {
  uint32_t magic = 0;
  std::memcpy(&magic, data, sizeof(magic));
  if (magic != kFrameMagic) {
    return Status::IoError("frame does not start with the DNET magic");
  }
  uint8_t type = 0;
  std::memcpy(&type, data + 4, sizeof(type));
  if (!IsKnownMessageType(type)) {
    return Status::IoError("unknown frame type " + std::to_string(type));
  }
  uint64_t request_id = 0;
  std::memcpy(&request_id, data + 5, sizeof(request_id));
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, data + 13, sizeof(payload_len));
  if (payload_len > kMaxFramePayload) {
    return Status::IoError("frame payload length " +
                           std::to_string(payload_len) +
                           " exceeds the frame size limit");
  }
  header->type = static_cast<MessageType>(type);
  header->request_id = request_id;
  header->payload_len = payload_len;
  return Status::Ok();
}

void PayloadWriter::PutRaw(const void* data, size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

void PayloadWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutRaw(s.data(), s.size());
}

void PayloadWriter::PutVec(const la::Vec& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  PutRaw(v.data(), v.size() * sizeof(float));
}

Status PayloadReader::GetRaw(void* out, size_t n) {
  if (n > remaining_) {
    return Status::IoError("payload truncated: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining_));
  }
  std::memcpy(out, data_, n);
  data_ += n;
  remaining_ -= n;
  return Status::Ok();
}

Status PayloadReader::GetCount(size_t elem_size, uint32_t* count) {
  DUST_RETURN_IF_ERROR(GetU32(count));
  if (elem_size > 0 && static_cast<uint64_t>(*count) * elem_size > remaining_) {
    return Status::IoError("payload count " + std::to_string(*count) +
                           " exceeds the bytes remaining");
  }
  return Status::Ok();
}

Status PayloadReader::GetString(std::string* s) {
  uint32_t len = 0;
  DUST_RETURN_IF_ERROR(GetCount(1, &len));
  s->assign(data_, len);
  data_ += len;
  remaining_ -= len;
  return Status::Ok();
}

Status PayloadReader::GetVec(la::Vec* v, size_t dim) {
  uint32_t len = 0;
  DUST_RETURN_IF_ERROR(GetCount(sizeof(float), &len));
  if (dim > 0 && len != dim) {
    return Status::IoError("vector length " + std::to_string(len) +
                           " does not match dim " + std::to_string(dim));
  }
  v->resize(len);
  if (len > 0) {
    std::memcpy(v->data(), data_, len * sizeof(float));
    data_ += len * sizeof(float);
    remaining_ -= len * sizeof(float);
  }
  return Status::Ok();
}

uint8_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kInternal:
      return 5;
    case StatusCode::kIoError:
      return 6;
    case StatusCode::kUnimplemented:
      return 7;
    case StatusCode::kUnavailable:
      return 8;
    case StatusCode::kDeadlineExceeded:
      return 9;
  }
  DUST_CHECK(false && "unhandled status code");
  return 5;
}

StatusCode StatusCodeFromWire(uint8_t tag) {
  switch (tag) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kOutOfRange;
    case 4:
      return StatusCode::kFailedPrecondition;
    case 5:
      return StatusCode::kInternal;
    case 6:
      return StatusCode::kIoError;
    case 7:
      return StatusCode::kUnimplemented;
    case 8:
      return StatusCode::kUnavailable;
    case 9:
      return StatusCode::kDeadlineExceeded;
    default:
      // An error report must survive even a mangled code byte.
      return StatusCode::kInternal;
  }
}

std::string EncodeInfo(const InfoMessage& m) {
  PayloadWriter w;
  w.PutU64(m.dim);
  w.PutU64(m.size);
  w.PutU8(m.metric_tag);
  w.PutString(m.index_type);
  w.PutString(m.shard_label);
  return w.Take();
}

Status DecodeInfo(const std::string& payload, InfoMessage* m) {
  PayloadReader r(payload);
  DUST_RETURN_IF_ERROR(r.GetU64(&m->dim));
  DUST_RETURN_IF_ERROR(r.GetU64(&m->size));
  DUST_RETURN_IF_ERROR(r.GetU8(&m->metric_tag));
  DUST_RETURN_IF_ERROR(r.GetString(&m->index_type));
  DUST_RETURN_IF_ERROR(r.GetString(&m->shard_label));
  return Status::Ok();
}

std::string EncodeSearchRequest(const SearchRequestMessage& m) {
  PayloadWriter w;
  w.PutU64(m.trace_id);
  w.PutU64(m.parent_span_id);
  w.PutU8(m.sampled);
  w.PutU64(m.k);
  w.PutVec(m.query);
  return w.Take();
}

Status DecodeSearchRequest(const std::string& payload,
                           SearchRequestMessage* m) {
  PayloadReader r(payload);
  DUST_RETURN_IF_ERROR(r.GetU64(&m->trace_id));
  DUST_RETURN_IF_ERROR(r.GetU64(&m->parent_span_id));
  DUST_RETURN_IF_ERROR(r.GetU8(&m->sampled));
  DUST_RETURN_IF_ERROR(r.GetU64(&m->k));
  DUST_RETURN_IF_ERROR(r.GetVec(&m->query, 0));
  return Status::Ok();
}

namespace {

constexpr size_t kWireHitBytes = sizeof(uint64_t) + sizeof(float);

void PutHits(PayloadWriter* w, const std::vector<index::SearchHit>& hits) {
  w->PutU32(static_cast<uint32_t>(hits.size()));
  for (const index::SearchHit& hit : hits) {
    w->PutU64(hit.id);
    w->PutFloat(hit.distance);
  }
}

Status GetHits(PayloadReader* r, std::vector<index::SearchHit>* hits) {
  uint32_t count = 0;
  DUST_RETURN_IF_ERROR(r->GetCount(kWireHitBytes, &count));
  hits->clear();
  hits->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    float distance = 0.0f;
    DUST_RETURN_IF_ERROR(r->GetU64(&id));
    DUST_RETURN_IF_ERROR(r->GetFloat(&distance));
    hits->push_back({static_cast<size_t>(id), distance});
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeSearchResponse(const SearchResponseMessage& m) {
  PayloadWriter w;
  PutHits(&w, m.hits);
  return w.Take();
}

Status DecodeSearchResponse(const std::string& payload,
                            SearchResponseMessage* m) {
  PayloadReader r(payload);
  return GetHits(&r, &m->hits);
}

std::string EncodeSearchBatchRequest(const SearchBatchRequestMessage& m) {
  PayloadWriter w;
  w.PutU64(m.trace_id);
  w.PutU64(m.parent_span_id);
  w.PutU8(m.sampled);
  w.PutU64(m.k);
  w.PutU32(static_cast<uint32_t>(m.queries.size()));
  for (const la::Vec& q : m.queries) w.PutVec(q);
  return w.Take();
}

Status DecodeSearchBatchRequest(const std::string& payload,
                                SearchBatchRequestMessage* m) {
  PayloadReader r(payload);
  DUST_RETURN_IF_ERROR(r.GetU64(&m->trace_id));
  DUST_RETURN_IF_ERROR(r.GetU64(&m->parent_span_id));
  DUST_RETURN_IF_ERROR(r.GetU8(&m->sampled));
  DUST_RETURN_IF_ERROR(r.GetU64(&m->k));
  // Every query still owes its own u32 length prefix.
  uint32_t count = 0;
  DUST_RETURN_IF_ERROR(r.GetCount(sizeof(uint32_t), &count));
  m->queries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    DUST_RETURN_IF_ERROR(r.GetVec(&m->queries[i], 0));
  }
  return Status::Ok();
}

std::string EncodeSearchBatchResponse(const SearchBatchResponseMessage& m) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(m.results.size()));
  for (const std::vector<index::SearchHit>& hits : m.results) {
    PutHits(&w, hits);
  }
  return w.Take();
}

Status DecodeSearchBatchResponse(const std::string& payload,
                                 SearchBatchResponseMessage* m) {
  PayloadReader r(payload);
  // Every result list still owes its own u32 hit count.
  uint32_t count = 0;
  DUST_RETURN_IF_ERROR(r.GetCount(sizeof(uint32_t), &count));
  m->results.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    DUST_RETURN_IF_ERROR(GetHits(&r, &m->results[i]));
  }
  return Status::Ok();
}

Frame MakeErrorFrame(uint64_t request_id, const Status& status) {
  PayloadWriter w;
  w.PutU8(StatusCodeToWire(status.code()));
  w.PutString(status.message());
  Frame frame;
  frame.type = MessageType::kError;
  frame.request_id = request_id;
  frame.payload = w.Take();
  return frame;
}

Status DecodeErrorEnvelope(const std::string& payload) {
  PayloadReader r(payload);
  uint8_t code = 0;
  std::string message;
  DUST_RETURN_IF_ERROR(r.GetU8(&code));
  DUST_RETURN_IF_ERROR(r.GetString(&message));
  StatusCode decoded = StatusCodeFromWire(code);
  if (decoded == StatusCode::kOk) {
    // An "ok error" is a protocol violation, not a success.
    return Status::IoError("error envelope carried an Ok status code");
  }
  return Status(decoded, std::move(message));
}

}  // namespace dust::net
