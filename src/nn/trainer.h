// Fine-tuning loop (Sec. 4 / Sec. 6.3.3): mini-batch Adam on the cosine
// embedding loss with early stopping (patience 10 on validation loss), and
// validation-set threshold selection for the unionability classifier.
#ifndef DUST_NN_TRAINER_H_
#define DUST_NN_TRAINER_H_

#include <string>
#include <vector>

#include "nn/dust_model.h"

namespace dust::nn {

/// One fine-tuning data point: a pair of serialized tuples and a binary
/// unionability label (1 = same/unionable tables, 0 = non-unionable).
struct TuplePair {
  std::string serialized_a;
  std::string serialized_b;
  int label = 0;
};

/// Train/validation/test split (70:15:15 in the paper, Sec. 6.1.1).
struct PairDataset {
  std::vector<TuplePair> train;
  std::vector<TuplePair> validation;
  std::vector<TuplePair> test;
};

struct TrainerConfig {
  size_t max_epochs = 100;
  size_t patience = 10;  // early stopping (Sec. 6.3.3)
  size_t batch_size = 32;
  float learning_rate = 1e-3f;
  float margin = 0.0f;  // cosine embedding loss margin
  uint64_t seed = 99;
  bool verbose = false;
};

struct TrainReport {
  size_t epochs_run = 0;
  float best_validation_loss = 0.0f;
  std::vector<float> train_loss_per_epoch;
  std::vector<float> validation_loss_per_epoch;
  bool early_stopped = false;
};

/// Trains `model` in place; restores the best-validation parameters.
TrainReport TrainDustModel(DustModel* model,
                           const std::vector<TuplePair>& train,
                           const std::vector<TuplePair>& validation,
                           const TrainerConfig& config);

/// Mean cosine-embedding loss of `model` over `pairs` (eval mode).
float EvaluateLoss(const DustModel& model, const std::vector<TuplePair>& pairs,
                   float margin = 0.0f);

/// Classifies a pair as unionable when cosine *distance* < threshold
/// (Sec. 6.3.1); returns accuracy over `pairs` for any TupleEncoder.
float PairAccuracy(const embed::TupleEncoder& encoder,
                   const std::vector<TuplePair>& pairs, float threshold);

/// Sweeps thresholds on the validation set and returns the accuracy-
/// maximizing cosine-distance threshold (the paper settles on 0.7).
float SelectThreshold(const embed::TupleEncoder& encoder,
                      const std::vector<TuplePair>& validation,
                      float step = 0.05f);

}  // namespace dust::nn

#endif  // DUST_NN_TRAINER_H_
