#include "nn/loss.h"

#include <cmath>

#include "la/distance.h"
#include "util/status.h"

namespace dust::nn {

CosineLossResult CosineEmbeddingLoss(const la::Vec& a, const la::Vec& b,
                                     int label, float margin) {
  DUST_CHECK(a.size() == b.size());
  DUST_CHECK(label == 0 || label == 1);
  CosineLossResult out;
  out.grad_a.assign(a.size(), 0.0f);
  out.grad_b.assign(b.size(), 0.0f);

  float na = la::Norm(a);
  float nb = la::Norm(b);
  if (na < 1e-12f || nb < 1e-12f) {
    // Degenerate embedding; no useful gradient direction.
    out.loss = (label == 1) ? 1.0f : 0.0f;
    return out;
  }
  float dot = la::Dot(a, b);
  float cosv = dot / (na * nb);

  // d cos / d a_i = b_i/(na*nb) - cos * a_i/na^2   (and symmetrically for b)
  auto add_dcos = [&](float coeff) {
    float inv = 1.0f / (na * nb);
    float ca = cosv / (na * na);
    float cb = cosv / (nb * nb);
    for (size_t i = 0; i < a.size(); ++i) {
      out.grad_a[i] += coeff * (b[i] * inv - ca * a[i]);
      out.grad_b[i] += coeff * (a[i] * inv - cb * b[i]);
    }
  };

  if (label == 1) {
    out.loss = 1.0f - cosv;
    add_dcos(-1.0f);  // dL/dcos = -1
  } else {
    float hinge = cosv - margin;
    if (hinge > 0.0f) {
      out.loss = hinge;
      add_dcos(1.0f);  // dL/dcos = +1
    } else {
      out.loss = 0.0f;
    }
  }
  return out;
}

}  // namespace dust::nn
