#include "nn/optimizer.h"

#include <cmath>

namespace dust::nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::Register(ParamView view) {
  views_.push_back(view);
  velocity_.emplace_back(view.size, 0.0f);
}

void Sgd::Step() {
  for (size_t i = 0; i < views_.size(); ++i) {
    ParamView& view = views_[i];
    std::vector<float>& vel = velocity_[i];
    for (size_t j = 0; j < view.size; ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * view.grad[j];
      view.param[j] += vel[j];
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::Register(ParamView view) {
  views_.push_back(view);
  m_.emplace_back(view.size, 0.0f);
  v_.emplace_back(view.size, 0.0f);
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < views_.size(); ++i) {
    ParamView& view = views_[i];
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (size_t j = 0; j < view.size; ++j) {
      float g = view.grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      float mhat = m[j] / bc1;
      float vhat = v[j] / bc2;
      view.param[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace dust::nn
