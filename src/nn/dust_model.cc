#include "nn/dust_model.h"

#include <cstdio>
#include <fstream>

#include "text/hashing.h"

namespace dust::nn {

DustModel::DustModel(const DustModelConfig& config)
    : config_(config),
      feature_seed_(SplitMix64(config.seed ^
                               embed::FamilySeedConstant(config.family))),
      lin1_(config.feature_dim, config.hidden_dim, config.seed ^ 0x11ULL),
      lin2_(config.hidden_dim, config.embedding_dim, config.seed ^ 0x22ULL) {
  DUST_CHECK(config.feature_dim > 0 && config.hidden_dim > 0 &&
             config.embedding_dim > 0);
}

std::string DustModel::name() const {
  return std::string("DUST (") + embed::ModelFamilyName(config_.family) + ")";
}

text::SparseVector DustModel::Featurize(const std::string& serialized) const {
  return text::HashTokensSparse(
      embed::FamilyFeatures(config_.family, serialized), config_.feature_dim,
      feature_seed_);
}

la::Vec DustModel::EncodeSerialized(const std::string& serialized) const {
  text::SparseVector x = Featurize(serialized);
  la::Vec hidden = TanhForward(lin1_.ForwardSparse(x));
  return lin2_.Forward(hidden);
}

la::Vec DustModel::ForwardTrain(const std::string& serialized, Rng* rng,
                                ForwardCache* cache) {
  text::SparseVector x = Featurize(serialized);
  // Inverted dropout on the frozen features (Sec. 4: dropout right after
  // the frozen encoder, before the two linear layers).
  cache->dropped.indices.clear();
  cache->dropped.values.clear();
  float keep = 1.0f - config_.dropout_p;
  float scale = (keep > 0.0f) ? 1.0f / keep : 0.0f;
  for (size_t k = 0; k < x.indices.size(); ++k) {
    if (config_.dropout_p <= 0.0f || rng->NextDouble() < keep) {
      cache->dropped.indices.push_back(x.indices[k]);
      cache->dropped.values.push_back(x.values[k] * scale);
    }
  }
  cache->hidden_act = TanhForward(lin1_.ForwardSparse(cache->dropped));
  cache->output = lin2_.Forward(cache->hidden_act);
  return cache->output;
}

void DustModel::Backward(const ForwardCache& cache, const la::Vec& grad_output) {
  la::Vec grad_hidden = lin2_.Backward(cache.hidden_act, grad_output);
  la::Vec grad_pre = TanhBackward(cache.hidden_act, grad_hidden);
  lin1_.BackwardSparse(cache.dropped, grad_pre);
}

void DustModel::ZeroGrad() {
  lin1_.ZeroGrad();
  lin2_.ZeroGrad();
}

void DustModel::RegisterParams(Optimizer* optimizer) {
  optimizer->Register({lin1_.weights().data().data(),
                       lin1_.weight_grad().data().data(),
                       lin1_.weights().data().size()});
  optimizer->Register(
      {lin1_.bias().data(), lin1_.bias_grad().data(), lin1_.bias().size()});
  optimizer->Register({lin2_.weights().data().data(),
                       lin2_.weight_grad().data().data(),
                       lin2_.weights().data().size()});
  optimizer->Register(
      {lin2_.bias().data(), lin2_.bias_grad().data(), lin2_.bias().size()});
}

std::vector<float> DustModel::SaveParams() const {
  std::vector<float> out;
  out.reserve(lin1_.weights().data().size() + lin1_.bias().size() +
              lin2_.weights().data().size() + lin2_.bias().size());
  auto append = [&out](const std::vector<float>& v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  append(lin1_.weights().data());
  append(lin1_.bias());
  append(lin2_.weights().data());
  append(lin2_.bias());
  return out;
}

void DustModel::LoadParams(const std::vector<float>& params) {
  size_t offset = 0;
  auto take = [&](std::vector<float>& dst) {
    DUST_CHECK(offset + dst.size() <= params.size());
    std::copy(params.begin() + offset, params.begin() + offset + dst.size(),
              dst.begin());
    offset += dst.size();
  };
  take(lin1_.weights().data());
  take(lin1_.bias());
  take(lin2_.weights().data());
  take(lin2_.bias());
  DUST_CHECK(offset == params.size());
}

namespace {
constexpr uint32_t kModelMagic = 0xD0570001;
}  // namespace

Status DustModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  uint32_t magic = kModelMagic;
  uint64_t dims[4] = {config_.feature_dim, config_.hidden_dim,
                      config_.embedding_dim,
                      static_cast<uint64_t>(config_.family)};
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  std::vector<float> params = SaveParams();
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status DustModel::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t dims[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  if (!in || magic != kModelMagic) {
    return Status::InvalidArgument("not a DUST model file: " + path);
  }
  if (dims[0] != config_.feature_dim || dims[1] != config_.hidden_dim ||
      dims[2] != config_.embedding_dim ||
      dims[3] != static_cast<uint64_t>(config_.family)) {
    return Status::InvalidArgument("model shape mismatch: " + path);
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<float> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) return Status::IoError("truncated model file: " + path);
  LoadParams(params);
  return Status::Ok();
}

}  // namespace dust::nn
