// Cosine embedding loss (Sec. 4):
//   L(E(t1), E(t2)) = 1 - cos(E(t1), E(t2))          if label = 1
//                   = max(0, cos(E(t1), E(t2)) - m)  if label = 0
// with margin m = 0 by default (PyTorch's CosineEmbeddingLoss default).
#ifndef DUST_NN_LOSS_H_
#define DUST_NN_LOSS_H_

#include "la/vector_ops.h"

namespace dust::nn {

struct CosineLossResult {
  float loss = 0.0f;
  la::Vec grad_a;  // dL/da
  la::Vec grad_b;  // dL/db
};

/// Loss and gradients for one pair. `label` is 1 (similar/unionable) or 0
/// (dissimilar/non-unionable).
CosineLossResult CosineEmbeddingLoss(const la::Vec& a, const la::Vec& b,
                                     int label, float margin = 0.0f);

}  // namespace dust::nn

#endif  // DUST_NN_LOSS_H_
