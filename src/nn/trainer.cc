#include "nn/trainer.h"

#include <algorithm>
#include <limits>

#include "la/distance.h"
#include "nn/loss.h"
#include "util/logging.h"

namespace dust::nn {

float EvaluateLoss(const DustModel& model, const std::vector<TuplePair>& pairs,
                   float margin) {
  if (pairs.empty()) return 0.0f;
  double total = 0.0;
  for (const TuplePair& pair : pairs) {
    la::Vec a = model.EncodeSerialized(pair.serialized_a);
    la::Vec b = model.EncodeSerialized(pair.serialized_b);
    total += CosineEmbeddingLoss(a, b, pair.label, margin).loss;
  }
  return static_cast<float>(total / static_cast<double>(pairs.size()));
}

TrainReport TrainDustModel(DustModel* model,
                           const std::vector<TuplePair>& train,
                           const std::vector<TuplePair>& validation,
                           const TrainerConfig& config) {
  TrainReport report;
  Adam optimizer(config.learning_rate);
  model->RegisterParams(&optimizer);
  Rng rng(config.seed);

  std::vector<float> best_params = model->SaveParams();
  float best_val = std::numeric_limits<float>::infinity();
  size_t epochs_since_best = 0;

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t seen = 0;
    for (size_t start = 0; start < order.size(); start += config.batch_size) {
      size_t end = std::min(order.size(), start + config.batch_size);
      model->ZeroGrad();
      for (size_t i = start; i < end; ++i) {
        const TuplePair& pair = train[order[i]];
        DustModel::ForwardCache cache_a;
        DustModel::ForwardCache cache_b;
        la::Vec a = model->ForwardTrain(pair.serialized_a, &rng, &cache_a);
        la::Vec b = model->ForwardTrain(pair.serialized_b, &rng, &cache_b);
        CosineLossResult loss =
            CosineEmbeddingLoss(a, b, pair.label, config.margin);
        epoch_loss += loss.loss;
        ++seen;
        // Mean-reduce over the batch.
        float inv = 1.0f / static_cast<float>(end - start);
        la::ScaleInPlace(&loss.grad_a, inv);
        la::ScaleInPlace(&loss.grad_b, inv);
        model->Backward(cache_a, loss.grad_a);
        model->Backward(cache_b, loss.grad_b);
      }
      optimizer.Step();
    }
    report.epochs_run = epoch + 1;
    float train_loss =
        seen > 0 ? static_cast<float>(epoch_loss / static_cast<double>(seen))
                 : 0.0f;
    float val_loss = EvaluateLoss(*model, validation, config.margin);
    report.train_loss_per_epoch.push_back(train_loss);
    report.validation_loss_per_epoch.push_back(val_loss);
    if (config.verbose) {
      DUST_LOG(Info) << "epoch " << (epoch + 1) << " train=" << train_loss
                     << " val=" << val_loss;
    }

    if (val_loss < best_val - 1e-5f) {
      best_val = val_loss;
      best_params = model->SaveParams();
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
      if (epochs_since_best >= config.patience) {
        report.early_stopped = true;
        break;
      }
    }
  }

  model->LoadParams(best_params);
  report.best_validation_loss = best_val;
  return report;
}

float PairAccuracy(const embed::TupleEncoder& encoder,
                   const std::vector<TuplePair>& pairs, float threshold) {
  if (pairs.empty()) return 0.0f;
  size_t correct = 0;
  for (const TuplePair& pair : pairs) {
    la::Vec a = encoder.EncodeSerialized(pair.serialized_a);
    la::Vec b = encoder.EncodeSerialized(pair.serialized_b);
    float distance = la::CosineDistance(a, b);
    int predicted = distance < threshold ? 1 : 0;
    if (predicted == pair.label) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(pairs.size());
}

float SelectThreshold(const embed::TupleEncoder& encoder,
                      const std::vector<TuplePair>& validation, float step) {
  // Precompute distances once; sweep thresholds over them.
  std::vector<std::pair<float, int>> scored;
  scored.reserve(validation.size());
  for (const TuplePair& pair : validation) {
    la::Vec a = encoder.EncodeSerialized(pair.serialized_a);
    la::Vec b = encoder.EncodeSerialized(pair.serialized_b);
    scored.emplace_back(la::CosineDistance(a, b), pair.label);
  }
  float best_threshold = 0.7f;
  float best_accuracy = -1.0f;
  for (float threshold = step; threshold < 2.0f; threshold += step) {
    size_t correct = 0;
    for (const auto& [distance, label] : scored) {
      int predicted = distance < threshold ? 1 : 0;
      if (predicted == label) ++correct;
    }
    float acc = validation.empty()
                    ? 0.0f
                    : static_cast<float>(correct) /
                          static_cast<float>(scored.size());
    if (acc > best_accuracy) {
      best_accuracy = acc;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

}  // namespace dust::nn
