#include "nn/layers.h"

#include <cmath>

#include "util/status.h"

namespace dust::nn {

Linear::Linear(size_t in_dim, size_t out_dim, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(out_dim, in_dim),
      b_(out_dim, 0.0f),
      dw_(out_dim, in_dim),
      db_(out_dim, 0.0f) {
  Rng rng(seed);
  float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  for (float& x : w_.data()) {
    x = bound * (2.0f * static_cast<float>(rng.NextDouble()) - 1.0f);
  }
}

la::Vec Linear::Forward(const la::Vec& x) const {
  DUST_CHECK(x.size() == in_dim_);
  la::Vec y = w_.MatVec(x);
  la::AddInPlace(&y, b_);
  return y;
}

la::Vec Linear::ForwardSparse(const text::SparseVector& x) const {
  la::Vec y = b_;
  for (size_t k = 0; k < x.indices.size(); ++k) {
    size_t j = x.indices[k];
    DUST_CHECK(j < in_dim_);
    float v = x.values[k];
    for (size_t r = 0; r < out_dim_; ++r) {
      y[r] += w_.at(r, j) * v;
    }
  }
  return y;
}

la::Vec Linear::Backward(const la::Vec& x, const la::Vec& dy) {
  DUST_CHECK(x.size() == in_dim_ && dy.size() == out_dim_);
  for (size_t r = 0; r < out_dim_; ++r) {
    float g = dy[r];
    if (g == 0.0f) continue;
    float* dwr = dw_.row(r);
    const float* unused = nullptr;
    (void)unused;
    for (size_t c = 0; c < in_dim_; ++c) dwr[c] += g * x[c];
    db_[r] += g;
  }
  return w_.TransposeMatVec(dy);
}

void Linear::BackwardSparse(const text::SparseVector& x, const la::Vec& dy) {
  DUST_CHECK(dy.size() == out_dim_);
  for (size_t r = 0; r < out_dim_; ++r) {
    float g = dy[r];
    if (g == 0.0f) continue;
    db_[r] += g;
    float* dwr = dw_.row(r);
    for (size_t k = 0; k < x.indices.size(); ++k) {
      dwr[x.indices[k]] += g * x.values[k];
    }
  }
}

void Linear::ZeroGrad() {
  std::fill(dw_.data().begin(), dw_.data().end(), 0.0f);
  std::fill(db_.begin(), db_.end(), 0.0f);
}

la::Vec Dropout::ForwardTrain(const la::Vec& x, Rng* rng) {
  mask_.assign(x.size(), 0.0f);
  la::Vec y(x.size(), 0.0f);
  if (p_ <= 0.0f) {
    std::fill(mask_.begin(), mask_.end(), 1.0f);
    return x;
  }
  float keep = 1.0f - p_;
  float scale = 1.0f / keep;
  for (size_t i = 0; i < x.size(); ++i) {
    if (rng->NextDouble() < keep) {
      mask_[i] = scale;
      y[i] = x[i] * scale;
    }
  }
  return y;
}

la::Vec Dropout::Backward(const la::Vec& dy) const {
  DUST_CHECK(dy.size() == mask_.size());
  la::Vec dx(dy.size(), 0.0f);
  for (size_t i = 0; i < dy.size(); ++i) dx[i] = dy[i] * mask_[i];
  return dx;
}

la::Vec TanhForward(const la::Vec& x) {
  la::Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
  return y;
}

la::Vec TanhBackward(const la::Vec& y, const la::Vec& dy) {
  DUST_CHECK(y.size() == dy.size());
  la::Vec dx(y.size());
  for (size_t i = 0; i < y.size(); ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  return dx;
}

}  // namespace dust::nn
