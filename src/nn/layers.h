// Neural network layers with explicit forward/backward passes.
//
// The DUST fine-tuning architecture (Sec. 4, Fig. 3 bottom-right) is a
// frozen feature extractor followed by a dropout layer and two linear
// layers. The graph is small and fixed, so layers carry their own gradient
// buffers instead of a general autograd.
#ifndef DUST_NN_LAYERS_H_
#define DUST_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "text/hashing.h"
#include "util/rng.h"

namespace dust::nn {

/// Fully connected layer: y = W x + b.
class Linear {
 public:
  /// Xavier/Glorot-uniform initialization, deterministic in `seed`.
  Linear(size_t in_dim, size_t out_dim, uint64_t seed);

  /// Dense forward.
  la::Vec Forward(const la::Vec& x) const;

  /// Sparse forward (first layer; input features are hashed tokens).
  la::Vec ForwardSparse(const text::SparseVector& x) const;

  /// Accumulates gradients for (W, b) given upstream grad dy and the input
  /// that produced it; returns dx (gradient w.r.t. the input).
  la::Vec Backward(const la::Vec& x, const la::Vec& dy);

  /// Sparse variant of Backward; does not return dx (features are frozen).
  void BackwardSparse(const text::SparseVector& x, const la::Vec& dy);

  void ZeroGrad();

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  la::Matrix& weights() { return w_; }
  la::Vec& bias() { return b_; }
  la::Matrix& weight_grad() { return dw_; }
  la::Vec& bias_grad() { return db_; }
  const la::Matrix& weights() const { return w_; }
  const la::Vec& bias() const { return b_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  la::Matrix w_;   // out_dim x in_dim
  la::Vec b_;      // out_dim
  la::Matrix dw_;  // gradient accumulators
  la::Vec db_;
};

/// Inverted dropout: at train time zeroes each unit with probability p and
/// scales survivors by 1/(1-p); identity at eval time.
class Dropout {
 public:
  explicit Dropout(float p) : p_(p) {}

  /// Samples a fresh mask (train mode).
  la::Vec ForwardTrain(const la::Vec& x, Rng* rng);

  /// Identity (eval mode).
  la::Vec ForwardEval(const la::Vec& x) const { return x; }

  /// Applies the last sampled mask to the upstream gradient.
  la::Vec Backward(const la::Vec& dy) const;

  float p() const { return p_; }

 private:
  float p_;
  std::vector<float> mask_;
};

/// tanh activation.
la::Vec TanhForward(const la::Vec& x);
/// dL/dx given dL/dy and y = tanh(x).
la::Vec TanhBackward(const la::Vec& y, const la::Vec& dy);

}  // namespace dust::nn

#endif  // DUST_NN_LAYERS_H_
