// The DUST fine-tuned tuple embedding model (Sec. 4, Fig. 3 bottom-right).
//
// Architecture: frozen feature extractor (family featurization hashed into
// a sparse feature space — the stand-in for the frozen transformer, see
// DESIGN.md §1) → dropout → linear → linear. The final linear output is the
// fixed-dimension tuple embedding E(t). Trained with the cosine embedding
// loss of Sec. 4 on unionability-labelled tuple pairs.
#ifndef DUST_NN_DUST_MODEL_H_
#define DUST_NN_DUST_MODEL_H_

#include <memory>
#include <string>

#include "embed/hashed_encoders.h"
#include "embed/tuple_encoder.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/status.h"

namespace dust::nn {

struct DustModelConfig {
  /// Frozen featurization family: kBert -> "DUST (BERT)",
  /// kRoberta -> "DUST (RoBERTa)".
  embed::ModelFamily family = embed::ModelFamily::kRoberta;
  /// Hashed sparse feature space of the frozen extractor.
  size_t feature_dim = 4096;
  /// Width of the first (fine-tuning) linear layer.
  size_t hidden_dim = 96;
  /// Output embedding dimension (768 in the paper; 64 by default here —
  /// a throughput knob, see DESIGN.md §1).
  size_t embedding_dim = 64;
  float dropout_p = 0.1f;
  uint64_t seed = 7;
};

/// Trainable tuple encoder. Implements embed::TupleEncoder for inference.
class DustModel : public embed::TupleEncoder {
 public:
  explicit DustModel(const DustModelConfig& config);

  // --- Inference (TupleEncoder) ---
  la::Vec EncodeSerialized(const std::string& serialized) const override;
  size_t dim() const override { return config_.embedding_dim; }
  std::string name() const override;

  // --- Training ---
  /// Per-branch forward cache for backprop.
  struct ForwardCache {
    text::SparseVector dropped;  // features after (inverted) dropout
    la::Vec hidden_act;          // tanh output of the first linear layer
    la::Vec output;              // final embedding
  };

  /// Training-mode forward (samples a dropout mask from `rng`).
  la::Vec ForwardTrain(const std::string& serialized, Rng* rng,
                       ForwardCache* cache);

  /// Accumulates parameter gradients for one branch.
  void Backward(const ForwardCache& cache, const la::Vec& grad_output);

  void ZeroGrad();

  /// Registers all trainable parameters with `optimizer`.
  void RegisterParams(Optimizer* optimizer);

  /// Snapshot / restore of all parameters (early-stopping best model).
  std::vector<float> SaveParams() const;
  void LoadParams(const std::vector<float>& params);

  /// Binary model (de)serialization.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  const DustModelConfig& config() const { return config_; }

  /// The frozen sparse featurization of a serialized tuple.
  text::SparseVector Featurize(const std::string& serialized) const;

 private:
  DustModelConfig config_;
  uint64_t feature_seed_;
  Linear lin1_;
  Linear lin2_;
};

}  // namespace dust::nn

#endif  // DUST_NN_DUST_MODEL_H_
