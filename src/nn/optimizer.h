// Gradient-descent optimizers over flat parameter views.
#ifndef DUST_NN_OPTIMIZER_H_
#define DUST_NN_OPTIMIZER_H_

#include <cstddef>
#include <vector>

namespace dust::nn {

/// A (parameter, gradient) pair registered with the optimizer. The spans
/// must stay valid for the optimizer's lifetime.
struct ParamView {
  float* param;
  const float* grad;
  size_t size;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Registers a parameter tensor; call once per tensor before stepping.
  virtual void Register(ParamView view) = 0;
  /// Applies one update using the current gradient values.
  virtual void Step() = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void Register(ParamView view) override;
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<ParamView> views_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);
  void Register(ParamView view) override;
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  size_t t_ = 0;
  std::vector<ParamView> views_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace dust::nn

#endif  // DUST_NN_OPTIMIZER_H_
