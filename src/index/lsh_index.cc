#include "index/lsh_index.h"

#include <algorithm>

#include "io/index_io.h"
#include "util/rng.h"
#include "util/status.h"

namespace dust::index {

LshIndex::LshIndex(size_t dim, la::Metric metric, LshConfig config)
    : dim_(dim), metric_(metric), config_(config) {
  DUST_CHECK(config_.nbits >= 1 && config_.nbits <= 63);
  // Random-hyperplane signatures approximate angular similarity only; under
  // kEuclidean/kManhattan the buckets would be meaningless and recall would
  // silently collapse. Paths fed by external input (io::ReadIndex for index
  // files; any future CLI/config wiring should do the same) validate via
  // index::ValidateIndexMetric and return InvalidArgument before reaching
  // this internal check.
  DUST_CHECK(metric_ == la::Metric::kCosine &&
             "LshIndex supports only the cosine metric");
  Rng rng(config_.seed);
  hyperplanes_.reserve(config_.nbits);
  for (size_t b = 0; b < config_.nbits; ++b) {
    la::Vec h(dim_);
    for (float& x : h) x = static_cast<float>(rng.NextGaussian());
    hyperplanes_.push_back(std::move(h));
  }
}

uint64_t LshIndex::Signature(const la::Vec& v) const {
  uint64_t signature = 0;
  for (size_t b = 0; b < hyperplanes_.size(); ++b) {
    if (la::Dot(hyperplanes_[b], v) >= 0.0f) signature |= (1ULL << b);
  }
  return signature;
}

void LshIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  size_t id = vectors_.size();
  vectors_.push_back(v);
  norms_.push_back(la::Norm(v));
  buckets_[Signature(v)].push_back(id);
}

std::vector<SearchHit> LshIndex::Search(const la::Vec& query, size_t k) const {
  uint64_t signature = Signature(query);

  // Probe buckets in Hamming-ball order (radius 0, then single-bit flips,
  // then pairs when probe_radius >= 2).
  std::vector<uint64_t> probes = {signature};
  if (config_.probe_radius >= 1) {
    for (size_t b = 0; b < config_.nbits; ++b) {
      probes.push_back(signature ^ (1ULL << b));
    }
  }
  if (config_.probe_radius >= 2) {
    for (size_t b1 = 0; b1 < config_.nbits; ++b1) {
      for (size_t b2 = b1 + 1; b2 < config_.nbits; ++b2) {
        probes.push_back(signature ^ (1ULL << b1) ^ (1ULL << b2));
      }
    }
  }

  // Gather the probed buckets' live candidates (tombstones skipped before
  // scoring, never after the top-k truncation), then scan them with the
  // gathered batch kernel; cached norms make every cosine candidate one
  // fused dot product.
  std::vector<size_t> candidates;
  for (uint64_t code : probes) {
    auto it = buckets_.find(code);
    if (it == buckets_.end()) continue;
    for (size_t id : it->second) {
      if (!IsDead(id)) candidates.push_back(id);
    }
  }
  std::vector<SearchHit> hits;
  if (candidates.empty()) return hits;
  std::vector<float> candidate_distances(candidates.size());
  la::DistanceToMany(metric_, query, vectors_, norms_.data(),
                     candidates.data(), candidates.size(),
                     candidate_distances.data());
  hits.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    hits.push_back({candidates[i], candidate_distances[i]});
  }
  FinalizeHits(&hits, k);
  return hits;
}

Status LshIndex::SavePayload(io::IndexWriter* writer) const {
  writer->WriteU64(config_.nbits);
  writer->WriteU64(config_.probe_radius);
  writer->WriteU64(config_.seed);
  writer->WriteVecs(hyperplanes_);
  writer->WriteVecs(vectors_);
  // Buckets in sorted key order: the unordered_map iteration order is not
  // deterministic, and a canonical file layout makes byte-level diffing of
  // two saves of the same index meaningful.
  std::vector<uint64_t> keys;
  keys.reserve(buckets_.size());
  for (const auto& [key, ids] : buckets_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->WriteU64(keys.size());
  for (uint64_t key : keys) {
    writer->WriteU64(key);
    writer->WriteIds(buckets_.at(key));
  }
  return writer->status();
}

Status LshIndex::LoadPayload(io::IndexReader* reader) {
  uint64_t nbits = 0, probe_radius = 0, seed = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU64(&nbits));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&probe_radius));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&seed));
  if (nbits < 1 || nbits > 63) {
    return Status::IoError("LSH payload has invalid nbits");
  }
  config_.nbits = static_cast<size_t>(nbits);
  config_.probe_radius = static_cast<size_t>(probe_radius);
  config_.seed = seed;
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&hyperplanes_, dim_));
  if (hyperplanes_.size() != config_.nbits) {
    return Status::IoError("LSH payload hyperplane/nbits mismatch");
  }
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&vectors_, dim_));
  norms_ = la::NormsOf(vectors_);
  uint64_t num_buckets = 0;
  // Each bucket is at least a u64 key plus a u64 id count.
  DUST_RETURN_IF_ERROR(reader->ReadCount(2 * sizeof(uint64_t), &num_buckets));
  buckets_.clear();
  buckets_.reserve(num_buckets);
  size_t bucketed = 0;
  for (uint64_t b = 0; b < num_buckets; ++b) {
    uint64_t key = 0;
    DUST_RETURN_IF_ERROR(reader->ReadU64(&key));
    std::vector<size_t> ids;
    DUST_RETURN_IF_ERROR(reader->ReadIds(&ids));
    for (size_t id : ids) {
      if (id >= vectors_.size()) {
        return Status::IoError("LSH payload references out-of-range vector");
      }
    }
    bucketed += ids.size();
    buckets_[key] = std::move(ids);
  }
  if (bucketed != vectors_.size()) {
    return Status::IoError("LSH payload does not cover all vectors");
  }
  return Status::Ok();
}

}  // namespace dust::index
