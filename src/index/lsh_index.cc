#include "index/lsh_index.h"

#include "util/rng.h"
#include "util/status.h"

namespace dust::index {

LshIndex::LshIndex(size_t dim, la::Metric metric, LshConfig config)
    : dim_(dim), metric_(metric), config_(config) {
  DUST_CHECK(config_.nbits >= 1 && config_.nbits <= 63);
  Rng rng(config_.seed);
  hyperplanes_.reserve(config_.nbits);
  for (size_t b = 0; b < config_.nbits; ++b) {
    la::Vec h(dim_);
    for (float& x : h) x = static_cast<float>(rng.NextGaussian());
    hyperplanes_.push_back(std::move(h));
  }
}

uint64_t LshIndex::Signature(const la::Vec& v) const {
  uint64_t signature = 0;
  for (size_t b = 0; b < hyperplanes_.size(); ++b) {
    if (la::Dot(hyperplanes_[b], v) >= 0.0f) signature |= (1ULL << b);
  }
  return signature;
}

void LshIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  size_t id = vectors_.size();
  vectors_.push_back(v);
  buckets_[Signature(v)].push_back(id);
}

std::vector<SearchHit> LshIndex::Search(const la::Vec& query, size_t k) const {
  uint64_t signature = Signature(query);

  // Probe buckets in Hamming-ball order (radius 0, then single-bit flips,
  // then pairs when probe_radius >= 2).
  std::vector<uint64_t> probes = {signature};
  if (config_.probe_radius >= 1) {
    for (size_t b = 0; b < config_.nbits; ++b) {
      probes.push_back(signature ^ (1ULL << b));
    }
  }
  if (config_.probe_radius >= 2) {
    for (size_t b1 = 0; b1 < config_.nbits; ++b1) {
      for (size_t b2 = b1 + 1; b2 < config_.nbits; ++b2) {
        probes.push_back(signature ^ (1ULL << b1) ^ (1ULL << b2));
      }
    }
  }

  std::vector<SearchHit> hits;
  for (uint64_t code : probes) {
    auto it = buckets_.find(code);
    if (it == buckets_.end()) continue;
    for (size_t id : it->second) {
      hits.push_back({id, la::Distance(metric_, query, vectors_[id])});
    }
  }
  FinalizeHits(&hits, k);
  return hits;
}

}  // namespace dust::index
