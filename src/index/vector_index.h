// faiss-style vector index interface. Union search uses an index to
// shortlist candidate tables/tuples before exact re-scoring; the Fig. 2
// note that tuple-level search "requires an index over all tuples in a
// lake" is what these indexes provide.
#ifndef DUST_INDEX_VECTOR_INDEX_H_
#define DUST_INDEX_VECTOR_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "la/distance.h"
#include "la/vector_ops.h"

namespace dust::index {

/// One search hit: the stored vector's id and its distance to the query.
struct SearchHit {
  size_t id = 0;
  float distance = 0.0f;
};

/// Append-only vector index with top-k nearest-neighbor search.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Appends a vector; its id is the number of vectors added before it.
  virtual void Add(const la::Vec& v) = 0;

  /// Batch append.
  void AddAll(const std::vector<la::Vec>& vectors) {
    for (const la::Vec& v : vectors) Add(v);
  }

  /// Top-k nearest neighbors by ascending distance (ties by ascending id).
  /// Approximate indexes may miss true neighbors.
  virtual std::vector<SearchHit> Search(const la::Vec& query,
                                        size_t k) const = 0;

  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  virtual std::string name() const = 0;
};

/// Sorts hits ascending by (distance, id) and truncates to k.
void FinalizeHits(std::vector<SearchHit>* hits, size_t k);

}  // namespace dust::index

#endif  // DUST_INDEX_VECTOR_INDEX_H_
