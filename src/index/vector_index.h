// faiss-style vector index interface. Union search uses an index to
// shortlist candidate tables/tuples before exact re-scoring; the Fig. 2
// note that tuple-level search "requires an index over all tuples in a
// lake" is what these indexes provide.
#ifndef DUST_INDEX_VECTOR_INDEX_H_
#define DUST_INDEX_VECTOR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/distance.h"
#include "la/vector_ops.h"
#include "util/status.h"

namespace dust::io {
class IndexWriter;
class IndexReader;
}  // namespace dust::io

namespace dust::serve {
class Executor;
}  // namespace dust::serve

namespace dust::index {

/// One search hit: the stored vector's id and its distance to the query.
struct SearchHit {
  size_t id = 0;
  float distance = 0.0f;
};

/// Mutable vector index with top-k nearest-neighbor search. Vectors are
/// appended (ids assigned in insertion order) and deleted by tombstone:
/// Remove marks an id dead without touching the stored data, Search skips
/// dead ids before scoring (so k live hits come back whenever k live
/// vectors exist), and Compact rewrites the index without its tombstones.
/// Mutations are not synchronized against in-flight searches — quiesce
/// traffic before mutating, exactly as with SetExecutor.
class VectorIndex {
 public:
  /// Sentinel id in Compact remaps for vectors that were tombstoned.
  static constexpr size_t kInvalidId = static_cast<size_t>(-1);

  virtual ~VectorIndex() = default;

  /// Appends a vector; its id is the number of vectors added before it.
  virtual void Add(const la::Vec& v) = 0;

  /// Batch append, equivalent to calling Add per vector (ids assigned in
  /// order). Virtual so indexes with a cheaper bulk path can override it:
  /// FlatIndex reserves storage and fills its norm cache in one pass, and
  /// the sharded index partitions the batch so each shard ingests its
  /// vectors in one bulk call.
  virtual void AddAll(const std::vector<la::Vec>& vectors);

  /// Top-k nearest neighbors by ascending distance (ties by ascending id).
  /// Approximate indexes may miss true neighbors.
  ///
  /// Contract: concurrent Search calls on one index must be safe (the
  /// default SearchBatch fans queries out across threads). Implementations
  /// with lazy build state must synchronize it internally (see IvfFlatIndex
  /// Train locking) or override SearchBatch.
  virtual std::vector<SearchHit> Search(const la::Vec& query,
                                        size_t k) const = 0;

  /// Top-k nearest neighbors for every query, result i matching query i.
  /// Routes through the executor installed with SetExecutor (none by
  /// default). Exactly equivalent to calling Search per query regardless of
  /// how the work is scheduled.
  std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<la::Vec>& queries, size_t k) const {
    return SearchBatch(queries, k, executor_);
  }

  /// As above with an explicit executor. When `executor` is non-null the
  /// queries fan out across its pooled threads — zero thread creation per
  /// call, the steady-state serving path. When null, the legacy one-shot
  /// behavior: OpenMP when compiled with it, freshly spawned std::threads
  /// otherwise. Subclasses may override with fused kernels; results must
  /// stay bit-identical across all scheduling modes.
  virtual std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<la::Vec>& queries, size_t k,
      serve::Executor* executor) const;

  /// Tombstones the vector with this id. Returns false (and changes
  /// nothing) when the id is out of range or already dead. The id stays
  /// valid — size() is unchanged, and graph indexes may keep the dead
  /// vector as a routing waypoint — but Search never returns it again.
  virtual bool Remove(size_t id);

  /// Tombstones every id in `ids`; returns how many were newly removed
  /// (out-of-range and already-dead ids are skipped, matching Remove).
  virtual size_t RemoveAll(const std::vector<size_t>& ids);

  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  virtual std::string name() const = 0;
  virtual la::Metric metric() const = 0;

  /// Number of vectors Search can still return: size() minus tombstones.
  virtual size_t live_size() const { return size() - num_dead_; }

  /// Number of tombstoned ids.
  size_t num_tombstones() const { return num_dead_; }

  /// True when `id` has been tombstoned.
  bool IsDead(size_t id) const {
    return id < dead_.size() && dead_[id] != 0;
  }

  /// All tombstoned ids in ascending order — what io::WriteIndex persists.
  std::vector<size_t> Tombstones() const;

  /// Marks every id in `ids` dead, rejecting out-of-range and duplicate
  /// ids with IoError (the loader path: a corrupt tombstone list must not
  /// half-apply). Routes through Remove so subclasses with routed removal
  /// keep their bookkeeping.
  Status ApplyTombstones(const std::vector<size_t>& ids);

  /// True when the type's payload already embeds its tombstones (the
  /// sharded index persists them inside each child), telling io::WriteIndex
  /// to emit an empty top-level tombstone list instead of duplicating them.
  virtual bool TombstonesInPayload() const { return false; }

  /// Copies the stored vector for `id` (dead or alive) into `*out`.
  /// Returns false when the id is out of range or the index cannot
  /// reproduce stored vectors (e.g. a remote view). The raw-data hook
  /// Compact is built on.
  virtual bool GetVector(size_t id, la::Vec* out) const;

  /// Rebuilds this index without its tombstones: live vectors are re-added
  /// in ascending id order to a fresh index with the same config.
  /// `*remap` gets one entry per old id — the new id for live vectors,
  /// kInvalidId for tombstoned ones — so callers can rewrite their own
  /// id-keyed state. Exact index types (flat; lsh, whose hyperplanes are
  /// copied; ivf at full probe) return bit-identical search results to the
  /// tombstoned original; approximate types may re-rank as a rebuild
  /// would. Unimplemented for indexes that cannot reproduce their vectors.
  virtual Result<std::unique_ptr<VectorIndex>> Compact(
      std::vector<size_t>* remap) const;

  /// Stable on-disk type name — the same string MakeVectorIndex accepts
  /// ("flat", "hnsw", "ivf", "lsh").
  virtual std::string type_tag() const = 0;

  /// Writes the type-specific payload (config + contents) after the common
  /// header io::WriteIndex emits. Indexes with lazy build state (IVF) must
  /// finalize it first so the file never contains a half-built structure.
  virtual Status SavePayload(io::IndexWriter* writer) const = 0;

  /// Restores the payload into a freshly-constructed index of the same
  /// type/dim/metric. Corrupt input yields a Status error, never an abort;
  /// on error the index is unusable and must be discarded.
  virtual Status LoadPayload(io::IndexReader* reader) = 0;

  /// Saves this index as a standalone file (io::SaveIndex). Load the result
  /// back with io::LoadIndex, which restores the concrete type; round-trip
  /// Search/SearchBatch results are bit-identical.
  Status Save(const std::string& path) const;

  /// Installs a shared executor for internal fan-out: the parameterless
  /// SearchBatch and any scatter the index does per query (ShardedIndex
  /// propagates to its shards and routes its per-query scatter here, so
  /// serving never spawns a thread per query). nullptr restores the legacy
  /// spawn-per-call behavior. Not synchronized against in-flight searches —
  /// install during serving setup, before traffic. The executor must
  /// outlive the index or be unset before destruction.
  virtual void SetExecutor(serve::Executor* executor) { executor_ = executor; }
  serve::Executor* executor() const { return executor_; }

 protected:
  /// A fresh, empty index with this index's config (dim, metric, tuning
  /// knobs, and any derived state that must match exactly, like LSH
  /// hyperplanes). The construction hook Compact is built on; nullptr
  /// (the default) makes Compact return Unimplemented.
  virtual std::unique_ptr<VectorIndex> CloneEmpty() const { return nullptr; }

  serve::Executor* executor_ = nullptr;
  /// Tombstone bitmap, sized lazily on first Remove (append-heavy indexes
  /// pay nothing until a delete happens). dead_[id] != 0 => tombstoned.
  std::vector<uint8_t> dead_;
  size_t num_dead_ = 0;
};

/// Sorts hits ascending by (distance, id) and truncates to k.
void FinalizeHits(std::vector<SearchHit>* hits, size_t k);

/// Optional per-type tuning knobs consumed by MakeVectorIndex. A field set
/// to 0 keeps that type's built-in default; fields for other index types
/// are ignored. This is how the pipeline config and CLI expose HNSW/IVF
/// parameters without every caller naming a concrete config struct.
struct IndexOptions {
  /// HNSW max neighbors per node on layers > 0 (HnswConfig::M). Must be
  /// >= 2 when set — ValidateIndexOptions rejects 1.
  size_t hnsw_m = 0;
  /// HNSW query beam width (HnswConfig::ef_search).
  size_t hnsw_ef_search = 0;
  /// IVF inverted-list count (IvfConfig::nlist).
  size_t ivf_nlist = 0;
  /// IVF lists probed per query (IvfConfig::nprobe).
  size_t ivf_nprobe = 0;
};

/// InvalidArgument when `options` carries a value no index can serve (e.g.
/// hnsw_m == 1: an HNSW graph needs degree >= 2 to stay connected). The
/// boundary check for user input; MakeVectorIndex treats a failure as a
/// programming error and aborts.
Status ValidateIndexOptions(const IndexOptions& options);

/// Builds an index by type name: "flat", "ivf", "lsh", "hnsw", or a sharded
/// spec "sharded:<type>:<n>[:<placement>]" (see shard/sharded_index.h).
/// Unknown names abort (DUST_CHECK) — a typo must not silently change
/// algorithms.
std::unique_ptr<VectorIndex> MakeVectorIndex(const std::string& type,
                                             size_t dim, la::Metric metric);

/// As above with tuning knobs applied (forwarded to every shard of a
/// sharded spec).
std::unique_ptr<VectorIndex> MakeVectorIndex(const std::string& type,
                                             size_t dim, la::Metric metric,
                                             const IndexOptions& options);

/// True when MakeVectorIndex accepts `type` (including well-formed sharded
/// specs). The single source of truth for user-facing validation (CLI
/// flags, config files).
bool IsKnownIndexType(const std::string& type);

/// InvalidArgument when index type `type` cannot serve `metric` — LSH's
/// random-hyperplane hashing approximates angular similarity only, so it
/// rejects kEuclidean/kManhattan (buckets would be meaningless and recall
/// would silently collapse). A sharded spec is validated against its child
/// type (e.g. "sharded:lsh:4" is cosine-only). Ok for every other known
/// combination. The boundary check for user input (io::ReadIndex, CLI
/// flags); MakeVectorIndex treats a failure as a programming error and
/// aborts.
Status ValidateIndexMetric(const std::string& type, la::Metric metric);

}  // namespace dust::index

#endif  // DUST_INDEX_VECTOR_INDEX_H_
