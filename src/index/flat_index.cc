#include "index/flat_index.h"

#include <algorithm>

#include "io/index_io.h"
#include "util/status.h"

namespace dust::index {

void FlatIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  vectors_.push_back(v);
}

std::vector<SearchHit> FlatIndex::Search(const la::Vec& query,
                                         size_t k) const {
  std::vector<SearchHit> hits;
  hits.reserve(vectors_.size());
  for (size_t id = 0; id < vectors_.size(); ++id) {
    hits.push_back({id, la::Distance(metric_, query, vectors_[id])});
  }
  FinalizeHits(&hits, k);
  return hits;
}

Status FlatIndex::SavePayload(io::IndexWriter* writer) const {
  writer->WriteVecs(vectors_);
  return writer->status();
}

Status FlatIndex::LoadPayload(io::IndexReader* reader) {
  return reader->ReadVecs(&vectors_, dim_);
}

}  // namespace dust::index
