#include "index/flat_index.h"

#include <algorithm>

#include "io/index_io.h"
#include "util/status.h"

namespace dust::index {

void FlatIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  vectors_.push_back(v);
  norms_.push_back(la::Norm(v));
}

void FlatIndex::AddAll(const std::vector<la::Vec>& vectors) {
  vectors_.reserve(vectors_.size() + vectors.size());
  norms_.reserve(norms_.size() + vectors.size());
  for (const la::Vec& v : vectors) {
    DUST_CHECK(v.size() == dim_);
    vectors_.push_back(v);
    norms_.push_back(la::Norm(v));
  }
}

std::vector<SearchHit> FlatIndex::Search(const la::Vec& query,
                                         size_t k) const {
  std::vector<SearchHit> hits;
  if (num_dead_ > 0) {
    // Tombstoned store: gather the live ids and score only those, so the
    // top-k truncation never spends a slot on a dead vector.
    std::vector<size_t> live;
    live.reserve(live_size());
    for (size_t id = 0; id < vectors_.size(); ++id) {
      if (!IsDead(id)) live.push_back(id);
    }
    std::vector<float> distances(live.size());
    la::DistanceToMany(metric_, query, vectors_, norms_.data(), live.data(),
                       live.size(), distances.data());
    hits.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      hits.push_back({live[i], distances[i]});
    }
    FinalizeHits(&hits, k);
    return hits;
  }
  // One-to-many batch kernel over the whole store; the norm cache makes
  // each cosine candidate a single fused dot product.
  std::vector<float> distances;
  la::DistanceToMany(metric_, query, vectors_, norms_, &distances);
  hits.reserve(vectors_.size());
  for (size_t id = 0; id < vectors_.size(); ++id) {
    hits.push_back({id, distances[id]});
  }
  FinalizeHits(&hits, k);
  return hits;
}

Status FlatIndex::SavePayload(io::IndexWriter* writer) const {
  writer->WriteVecs(vectors_);
  return writer->status();
}

Status FlatIndex::LoadPayload(io::IndexReader* reader) {
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&vectors_, dim_));
  norms_ = la::NormsOf(vectors_);
  return Status::Ok();
}

}  // namespace dust::index
