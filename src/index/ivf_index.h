// IVF-Flat index (faiss-style): a k-means coarse quantizer partitions the
// vectors into nlist inverted lists; a query scans only the nprobe nearest
// lists. Build after adding all vectors via Train(), or lazily on first
// search.
#ifndef DUST_INDEX_IVF_INDEX_H_
#define DUST_INDEX_IVF_INDEX_H_

#include <atomic>
#include <mutex>

#include "cluster/kmeans.h"
#include "index/vector_index.h"

namespace dust::index {

struct IvfConfig {
  size_t nlist = 16;   // number of inverted lists (k-means centroids)
  size_t nprobe = 4;   // lists scanned per query
  uint64_t seed = 42;
};

class IvfFlatIndex : public VectorIndex {
 public:
  IvfFlatIndex(size_t dim, la::Metric metric = la::Metric::kCosine,
               IvfConfig config = {})
      : dim_(dim), metric_(metric), config_(config) {}

  /// Appends a vector. Before the first training pass, additions just
  /// accumulate for the lazy build; on a trained index (including one
  /// restored by LoadPayload) the vector is assigned to its nearest
  /// existing centroid so incremental ingest never forces a full retrain.
  void Add(const la::Vec& v) override;

  /// Clusters the stored vectors into nlist lists. Called automatically on
  /// first Search if needed.
  void Train();

  std::vector<SearchHit> Search(const la::Vec& query, size_t k) const override;

  size_t size() const override { return vectors_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "IVF-Flat"; }
  la::Metric metric() const override { return metric_; }
  std::string type_tag() const override { return "ivf"; }
  bool trained() const { return trained_.load(std::memory_order_acquire); }
  const IvfConfig& config() const { return config_; }

  /// Trains first when needed (same double-checked lock as lazy Search), so
  /// the file always holds real centroids and lists — never the empty state
  /// of a built-but-unsearched index.
  Status SavePayload(io::IndexWriter* writer) const override;
  Status LoadPayload(io::IndexReader* reader) override;

  bool GetVector(size_t id, la::Vec* out) const override {
    if (id >= vectors_.size()) return false;
    *out = vectors_[id];
    return true;
  }

 protected:
  std::unique_ptr<VectorIndex> CloneEmpty() const override {
    return std::make_unique<IvfFlatIndex>(dim_, metric_, config_);
  }

 private:
  /// Lazy one-time build shared by Search and SavePayload: double-checked
  /// lock so concurrent const callers cannot race the training.
  void EnsureTrained() const;
  size_t dim_;
  la::Metric metric_;
  IvfConfig config_;
  std::vector<la::Vec> vectors_;
  std::vector<la::Vec> centroids_;
  /// Norm caches aligned with vectors_/centroids_ (Add, Train,
  /// LoadPayload); they turn cosine scans into one dot product per
  /// candidate.
  std::vector<float> norms_;
  std::vector<float> centroid_norms_;
  std::vector<std::vector<size_t>> lists_;
  // Lazy training may be triggered from concurrent const Search calls
  // (e.g. SearchBatch workers); the mutex serializes the one-time build.
  mutable std::mutex train_mutex_;
  std::atomic<bool> trained_{false};
};

}  // namespace dust::index

#endif  // DUST_INDEX_IVF_INDEX_H_
