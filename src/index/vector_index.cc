#include "index/vector_index.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "index/lsh_index.h"
#include "io/index_io.h"
#include "serve/executor.h"
#include "shard/sharded_index.h"
#include "util/status.h"

namespace dust::index {

void VectorIndex::AddAll(const std::vector<la::Vec>& vectors) {
  for (const la::Vec& v : vectors) Add(v);
}

bool VectorIndex::Remove(size_t id) {
  if (id >= size()) return false;
  if (dead_.size() < size()) dead_.resize(size(), 0);
  if (dead_[id] != 0) return false;
  dead_[id] = 1;
  ++num_dead_;
  return true;
}

size_t VectorIndex::RemoveAll(const std::vector<size_t>& ids) {
  size_t removed = 0;
  for (size_t id : ids) {
    if (Remove(id)) ++removed;
  }
  return removed;
}

std::vector<size_t> VectorIndex::Tombstones() const {
  std::vector<size_t> ids;
  ids.reserve(num_dead_);
  for (size_t id = 0; id < dead_.size(); ++id) {
    if (dead_[id] != 0) ids.push_back(id);
  }
  return ids;
}

Status VectorIndex::ApplyTombstones(const std::vector<size_t>& ids) {
  for (size_t id : ids) {
    if (id >= size()) {
      return Status::IoError("tombstone id " + std::to_string(id) +
                             " out of range for index of size " +
                             std::to_string(size()));
    }
    if (!Remove(id)) {
      return Status::IoError("duplicate tombstone id " + std::to_string(id));
    }
  }
  return Status::Ok();
}

bool VectorIndex::GetVector(size_t /*id*/, la::Vec* /*out*/) const {
  return false;
}

Result<std::unique_ptr<VectorIndex>> VectorIndex::Compact(
    std::vector<size_t>* remap) const {
  std::unique_ptr<VectorIndex> compacted = CloneEmpty();
  if (compacted == nullptr) {
    return Status::Unimplemented("index type " + type_tag() +
                                 " does not support compaction");
  }
  remap->assign(size(), kInvalidId);
  std::vector<la::Vec> live;
  live.reserve(live_size());
  la::Vec v;
  for (size_t id = 0; id < size(); ++id) {
    if (IsDead(id)) continue;
    if (!GetVector(id, &v)) {
      return Status::Internal("index type " + type_tag() +
                              " could not reproduce stored vector " +
                              std::to_string(id));
    }
    (*remap)[id] = live.size();
    live.push_back(v);
  }
  // Bulk re-add in ascending id order: the compacted index is exactly what
  // a fresh build over the survivors would produce.
  compacted->AddAll(live);
  compacted->SetExecutor(executor_);
  return std::move(compacted);
}

void FinalizeHits(std::vector<SearchHit>* hits, size_t k) {
  std::sort(hits->begin(), hits->end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (hits->size() > k) hits->resize(k);
}

std::vector<std::vector<SearchHit>> VectorIndex::SearchBatch(
    const std::vector<la::Vec>& queries, size_t k,
    serve::Executor* executor) const {
  std::vector<std::vector<SearchHit>> results(queries.size());
  if (queries.empty()) return results;
  // Concurrent Search calls are safe for every index (IVF's lazy train is
  // internally locked), so workers fan out over all queries directly.
  if (executor != nullptr) {
    // Serving path: pooled threads, zero thread creation per batch. Each
    // iteration writes only its own slot, and results are per-query, so
    // scheduling order cannot change the output.
    executor->ParallelFor(queries.size(), [&](size_t i) {
      results[i] = Search(queries[i], k);
    });
    return results;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i] = Search(queries[i], k);
  }
#else
  size_t hardware = std::thread::hardware_concurrency();
  size_t workers =
      std::min<size_t>(hardware == 0 ? 1 : hardware, queries.size());
  if (workers <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = Search(queries[i], k);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < queries.size();
             i = next.fetch_add(1)) {
          results[i] = Search(queries[i], k);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
#endif
  return results;
}

Status VectorIndex::Save(const std::string& path) const {
  return io::SaveIndex(*this, path);
}

Status ValidateIndexOptions(const IndexOptions& options) {
  if (options.hnsw_m == 1) {
    return Status::InvalidArgument(
        "hnsw M must be >= 2 (an HNSW graph of degree 1 cannot stay "
        "connected); 0 keeps the default");
  }
  return Status::Ok();
}

std::unique_ptr<VectorIndex> MakeVectorIndex(const std::string& type,
                                             size_t dim, la::Metric metric) {
  return MakeVectorIndex(type, dim, metric, IndexOptions{});
}

std::unique_ptr<VectorIndex> MakeVectorIndex(const std::string& type,
                                             size_t dim, la::Metric metric,
                                             const IndexOptions& options) {
  // A typo must not silently swap the retrieval algorithm. Guarding with
  // IsKnownIndexType keeps validation and dispatch from drifting apart, and
  // dispatching every known name explicitly (instead of a catch-all "flat"
  // fallback) means a type added to IsKnownIndexType but not here aborts
  // loudly rather than silently serving a linear scan.
  DUST_CHECK(IsKnownIndexType(type) && "unknown vector index type");
  DUST_CHECK(ValidateIndexMetric(type, metric).ok() &&
             "index type does not support this metric");
  DUST_CHECK(ValidateIndexOptions(options).ok() && "invalid index options");
  if (shard::IsShardedSpec(type)) {
    shard::ShardedIndexConfig config;
    DUST_CHECK(shard::ParseShardedSpec(type, &config));
    config.child_options = options;
    return std::make_unique<shard::ShardedIndex>(dim, metric,
                                                 std::move(config));
  }
  if (type == "flat") return std::make_unique<FlatIndex>(dim, metric);
  if (type == "hnsw") {
    HnswConfig config;
    if (options.hnsw_m > 0) config.M = options.hnsw_m;
    if (options.hnsw_ef_search > 0) config.ef_search = options.hnsw_ef_search;
    return std::make_unique<HnswIndex>(dim, metric, config);
  }
  if (type == "ivf") {
    IvfConfig config;
    if (options.ivf_nlist > 0) config.nlist = options.ivf_nlist;
    if (options.ivf_nprobe > 0) config.nprobe = options.ivf_nprobe;
    return std::make_unique<IvfFlatIndex>(dim, metric, config);
  }
  if (type == "lsh") return std::make_unique<LshIndex>(dim, metric);
  DUST_CHECK(false && "IsKnownIndexType and MakeVectorIndex drifted apart");
  return nullptr;
}

bool IsKnownIndexType(const std::string& type) {
  if (shard::IsShardedSpec(type)) {
    shard::ShardedIndexConfig config;
    return shard::ParseShardedSpec(type, &config);
  }
  return type == "flat" || type == "hnsw" || type == "ivf" || type == "lsh";
}

Status ValidateIndexMetric(const std::string& type, la::Metric metric) {
  if (shard::IsShardedSpec(type)) {
    shard::ShardedIndexConfig config;
    if (!shard::ParseShardedSpec(type, &config)) {
      return Status::InvalidArgument("malformed sharded index spec: " + type);
    }
    // Every shard is a child-type index, so the pairing rules are the
    // child's.
    return ValidateIndexMetric(config.child_type, metric);
  }
  if (type == "lsh" && metric != la::Metric::kCosine) {
    return Status::InvalidArgument(
        std::string("the lsh index supports only the cosine metric; its "
                    "random-hyperplane buckets are meaningless under ") +
        la::MetricName(metric));
  }
  return Status::Ok();
}

}  // namespace dust::index
