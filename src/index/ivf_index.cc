#include "index/ivf_index.h"

#include <algorithm>

#include "io/index_io.h"
#include "util/status.h"

namespace dust::index {

void IvfFlatIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  vectors_.push_back(v);
  norms_.push_back(la::Norm(v));
  if (trained() && !centroids_.empty()) {
    // Incremental ingest into a trained (e.g. just-loaded) index: assign
    // the vector to its nearest existing centroid instead of invalidating
    // the clustering — a full lazy retrain would defeat post-load Add.
    // Centroids drift from optimal as the store grows; Train() after a
    // bulk ingest re-clusters from scratch.
    std::vector<float> centroid_distances;
    la::DistanceToMany(metric_, v, centroids_, centroid_norms_,
                       &centroid_distances);
    size_t best = 0;
    for (size_t c = 1; c < centroids_.size(); ++c) {
      if (centroid_distances[c] < centroid_distances[best]) best = c;
    }
    lists_[best].push_back(vectors_.size() - 1);
    return;
  }
  trained_.store(false, std::memory_order_release);  // lists are stale
}

void IvfFlatIndex::Train() {
  if (vectors_.empty()) {
    trained_.store(true, std::memory_order_release);
    return;
  }
  size_t nlist = std::min(config_.nlist, vectors_.size());
  cluster::KmeansOptions options;
  options.seed = config_.seed;
  cluster::KmeansResult km = cluster::Kmeans(vectors_, nlist, options);
  centroids_ = km.centroids;
  centroid_norms_ = la::NormsOf(centroids_);
  lists_.assign(centroids_.size(), {});
  for (size_t i = 0; i < vectors_.size(); ++i) {
    lists_[km.assignments[i]].push_back(i);
  }
  trained_.store(true, std::memory_order_release);
}

void IvfFlatIndex::EnsureTrained() const {
  if (!trained()) {
    // Lazy (re)train keeps the interface append-then-search friendly.
    // Double-checked locking: concurrent searches (SearchBatch workers)
    // must not race the one-time build.
    std::lock_guard<std::mutex> lock(train_mutex_);
    if (!trained()) const_cast<IvfFlatIndex*>(this)->Train();
  }
}

std::vector<SearchHit> IvfFlatIndex::Search(const la::Vec& query,
                                            size_t k) const {
  EnsureTrained();
  if (vectors_.empty()) return {};

  // Rank lists by centroid distance (one batch scan); probe the nprobe
  // nearest, scanning each inverted list with the gathered batch kernel.
  std::vector<float> centroid_distances;
  la::DistanceToMany(metric_, query, centroids_, centroid_norms_,
                     &centroid_distances);
  std::vector<SearchHit> centroid_hits;
  centroid_hits.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    centroid_hits.push_back({c, centroid_distances[c]});
  }
  FinalizeHits(&centroid_hits, std::min(config_.nprobe, centroids_.size()));

  // Gather the probed lists' live candidates (tombstones skipped before
  // scoring, so the top-k truncation only ever sees live ids), then score
  // them with one batched gathered kernel call.
  std::vector<size_t> candidates;
  for (const SearchHit& ch : centroid_hits) {
    for (size_t id : lists_[ch.id]) {
      if (!IsDead(id)) candidates.push_back(id);
    }
  }
  std::vector<SearchHit> hits;
  if (candidates.empty()) return hits;
  std::vector<float> candidate_distances(candidates.size());
  la::DistanceToMany(metric_, query, vectors_, norms_.data(),
                     candidates.data(), candidates.size(),
                     candidate_distances.data());
  hits.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    hits.push_back({candidates[i], candidate_distances[i]});
  }
  FinalizeHits(&hits, k);
  return hits;
}

Status IvfFlatIndex::SavePayload(io::IndexWriter* writer) const {
  // An untrained index has empty centroids_/lists_; persisting that state
  // would make the loaded index retrain from scratch on first search (or,
  // worse, serve nothing if the trained flag were saved as-is).
  EnsureTrained();
  writer->WriteU64(config_.nlist);
  writer->WriteU64(config_.nprobe);
  writer->WriteU64(config_.seed);
  writer->WriteVecs(vectors_);
  writer->WriteVecs(centroids_);
  writer->WriteU64(lists_.size());
  for (const std::vector<size_t>& list : lists_) writer->WriteIds(list);
  return writer->status();
}

Status IvfFlatIndex::LoadPayload(io::IndexReader* reader) {
  uint64_t nlist = 0, nprobe = 0, seed = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU64(&nlist));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&nprobe));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&seed));
  if (nlist == 0) {
    return Status::IoError("IVF payload has nlist == 0");
  }
  config_.nlist = static_cast<size_t>(nlist);
  config_.nprobe = static_cast<size_t>(nprobe);
  config_.seed = seed;
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&vectors_, dim_));
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&centroids_, dim_));
  norms_ = la::NormsOf(vectors_);
  centroid_norms_ = la::NormsOf(centroids_);
  uint64_t num_lists = 0;
  DUST_RETURN_IF_ERROR(reader->ReadCount(sizeof(uint64_t), &num_lists));
  if (num_lists != centroids_.size()) {
    return Status::IoError("IVF payload list/centroid count mismatch");
  }
  lists_.assign(num_lists, {});
  size_t assigned = 0;
  for (uint64_t c = 0; c < num_lists; ++c) {
    DUST_RETURN_IF_ERROR(reader->ReadIds(&lists_[c]));
    for (size_t id : lists_[c]) {
      if (id >= vectors_.size()) {
        return Status::IoError("IVF payload references out-of-range vector");
      }
    }
    assigned += lists_[c].size();
  }
  if (assigned != vectors_.size()) {
    return Status::IoError("IVF payload does not cover all vectors");
  }
  trained_.store(true, std::memory_order_release);
  return Status::Ok();
}

}  // namespace dust::index
