#include "index/ivf_index.h"

#include <algorithm>

#include "util/status.h"

namespace dust::index {

void IvfFlatIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  vectors_.push_back(v);
  trained_.store(false, std::memory_order_release);  // lists are stale
}

void IvfFlatIndex::Train() {
  if (vectors_.empty()) {
    trained_.store(true, std::memory_order_release);
    return;
  }
  size_t nlist = std::min(config_.nlist, vectors_.size());
  cluster::KmeansOptions options;
  options.seed = config_.seed;
  cluster::KmeansResult km = cluster::Kmeans(vectors_, nlist, options);
  centroids_ = km.centroids;
  lists_.assign(centroids_.size(), {});
  for (size_t i = 0; i < vectors_.size(); ++i) {
    lists_[km.assignments[i]].push_back(i);
  }
  trained_.store(true, std::memory_order_release);
}

std::vector<SearchHit> IvfFlatIndex::Search(const la::Vec& query,
                                            size_t k) const {
  if (!trained()) {
    // Lazy (re)train keeps the interface append-then-search friendly.
    // Double-checked locking: concurrent searches (SearchBatch workers)
    // must not race the one-time build.
    std::lock_guard<std::mutex> lock(train_mutex_);
    if (!trained()) const_cast<IvfFlatIndex*>(this)->Train();
  }
  if (vectors_.empty()) return {};

  // Rank lists by centroid distance; scan the nprobe nearest.
  std::vector<SearchHit> centroid_hits;
  centroid_hits.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    centroid_hits.push_back({c, la::Distance(metric_, query, centroids_[c])});
  }
  FinalizeHits(&centroid_hits, std::min(config_.nprobe, centroids_.size()));

  std::vector<SearchHit> hits;
  for (const SearchHit& ch : centroid_hits) {
    for (size_t id : lists_[ch.id]) {
      hits.push_back({id, la::Distance(metric_, query, vectors_[id])});
    }
  }
  FinalizeHits(&hits, k);
  return hits;
}

}  // namespace dust::index
