// HNSW index (Malkov & Yashunin, TPAMI'20): a hierarchy of proximity
// graphs. Every vector gets a random top layer (geometric distribution);
// queries greedily descend the sparse upper layers to a good entry point,
// then run a best-first beam search (width ef_search) on the dense bottom
// layer. This is the shortlist structure Starmie-style union search uses in
// place of a flat scan: build is O(n log n)-ish, queries are polylog.
#ifndef DUST_INDEX_HNSW_INDEX_H_
#define DUST_INDEX_HNSW_INDEX_H_

#include <cstdint>

#include "index/vector_index.h"
#include "util/rng.h"

namespace dust::index {

struct HnswConfig {
  /// Max neighbors per node on layers > 0; layer 0 allows 2*M.
  size_t M = 16;
  /// Beam width while inserting. Larger = better graph, slower build.
  size_t ef_construction = 200;
  /// Beam width while querying (raised to k when k is larger). Larger =
  /// better recall, slower query.
  size_t ef_search = 128;
  uint64_t seed = 42;
};

class HnswIndex : public VectorIndex {
 public:
  HnswIndex(size_t dim, la::Metric metric = la::Metric::kCosine,
            HnswConfig config = {});

  void Add(const la::Vec& v) override;
  std::vector<SearchHit> Search(const la::Vec& query, size_t k) const override;

  size_t size() const override { return vectors_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "HNSW"; }
  la::Metric metric() const override { return metric_; }
  std::string type_tag() const override { return "hnsw"; }

  /// Persists the full layered graph (adjacency, entry point, config), so a
  /// loaded index searches bit-identically to the saved one. The RNG state
  /// is reset from the seed, not persisted: Add after Load stays valid but
  /// may draw different levels than the never-saved index would have.
  Status SavePayload(io::IndexWriter* writer) const override;
  Status LoadPayload(io::IndexReader* reader) override;

  /// Top layer of the hierarchy (-1 while empty); exposed for tests.
  int max_level() const { return max_level_; }
  const HnswConfig& config() const { return config_; }

  bool GetVector(size_t id, la::Vec* out) const override {
    if (id >= vectors_.size()) return false;
    *out = vectors_[id];
    return true;
  }

 protected:
  /// Compaction re-inserts the survivors into a fresh graph (same config,
  /// RNG reset from the seed) — exactly the index a from-scratch build over
  /// the survivors would produce.
  std::unique_ptr<VectorIndex> CloneEmpty() const override {
    return std::make_unique<HnswIndex>(dim_, metric_, config_);
  }

 private:
  /// Adjacency per layer; neighbors[l] exists for l in [0, node_level].
  struct Node {
    std::vector<std::vector<uint32_t>> neighbors;
  };

  float Dist(const la::Vec& a, const la::Vec& b) const {
    return la::Distance(metric_, a, b);
  }

  /// Distance between two stored vectors; with cosine, both norms come
  /// from the cache so the pair costs one dot product.
  float StoredDist(uint32_t a, uint32_t b) const {
    if (metric_ == la::Metric::kCosine) {
      return la::CosineDistanceFromDot(la::Dot(vectors_[a], vectors_[b]),
                                       norms_[a], norms_[b]);
    }
    return la::Distance(metric_, vectors_[a], vectors_[b]);
  }

  /// Geometric level draw with mean 1/ln(M) layers above 0.
  int RandomLevel();

  /// Single-step greedy walk on `level` toward `query`, starting at `entry`.
  uint32_t GreedyStep(const la::Vec& query, uint32_t entry, int level) const;

  /// Best-first beam search on one layer; returns up to `ef` closest nodes,
  /// unsorted. With `exclude_dead`, tombstoned nodes are still expanded as
  /// routing waypoints but never returned.
  std::vector<SearchHit> SearchLayer(const la::Vec& query, uint32_t entry,
                                     size_t ef, int level,
                                     bool exclude_dead = false) const;

  /// Paper's select-neighbors heuristic (Algorithm 4): prefers candidates
  /// closer to the new point than to any already-kept neighbor, which keeps
  /// edges spread across clusters instead of all inside one.
  std::vector<uint32_t> SelectNeighbors(std::vector<SearchHit> candidates,
                                        size_t max_degree) const;

  /// Caps `id`'s degree on `level` by re-running neighbor selection.
  void ShrinkNeighbors(uint32_t id, int level);

  size_t MaxDegree(int level) const {
    return level == 0 ? 2 * config_.M : config_.M;
  }

  size_t dim_;
  la::Metric metric_;
  HnswConfig config_;
  double level_mult_;
  Rng rng_;
  std::vector<la::Vec> vectors_;
  /// norms_[id] = Norm(vectors_[id]) (Add/LoadPayload); feeds the fused
  /// cosine path of the batched neighbor scans.
  std::vector<float> norms_;
  std::vector<Node> nodes_;
  uint32_t entry_point_ = 0;
  int max_level_ = -1;
};

}  // namespace dust::index

#endif  // DUST_INDEX_HNSW_INDEX_H_
