#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "io/index_io.h"
#include "util/status.h"

namespace dust::index {
namespace {

// Min-heap / max-heap orderings over (distance, id).
struct FartherFirst {
  bool operator()(const SearchHit& a, const SearchHit& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};
struct CloserFirst {
  bool operator()(const SearchHit& a, const SearchHit& b) const {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.id > b.id;
  }
};

}  // namespace

HnswIndex::HnswIndex(size_t dim, la::Metric metric, HnswConfig config)
    : dim_(dim),
      metric_(metric),
      config_(config),
      level_mult_(1.0 / std::log(static_cast<double>(std::max<size_t>(
                            config.M, 2)))),
      rng_(config.seed) {
  DUST_CHECK(config_.M >= 2);
  DUST_CHECK(config_.ef_construction >= 1);
  DUST_CHECK(config_.ef_search >= 1);
}

int HnswIndex::RandomLevel() {
  // -ln(U) is Exp(1); scaling by level_mult_ gives the paper's geometric
  // layer assignment. Clamp so adversarial draws cannot blow up the walk.
  double u = rng_.NextDouble();
  if (u <= 0.0) u = 1e-12;
  int level = static_cast<int>(-std::log(u) * level_mult_);
  return std::min(level, 48);
}

uint32_t HnswIndex::GreedyStep(const la::Vec& query, uint32_t entry,
                               int level) const {
  // Per-thread scratch: concurrent SearchBatch workers each get their own.
  thread_local std::vector<float> distances;
  uint32_t current = entry;
  float current_dist = Dist(query, vectors_[current]);
  bool improved = true;
  while (improved) {
    improved = false;
    const std::vector<uint32_t>& neighbors = nodes_[current].neighbors[level];
    if (neighbors.empty()) break;
    // One gathered batch scan over the adjacency list, then take the
    // strict-improvement argmin (first-seen wins ties, as before).
    distances.resize(neighbors.size());
    la::DistanceToMany(metric_, query, vectors_, norms_.data(),
                       neighbors.data(), neighbors.size(), distances.data());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (distances[i] < current_dist) {
        current = neighbors[i];
        current_dist = distances[i];
        improved = true;
      }
    }
  }
  return current;
}

std::vector<SearchHit> HnswIndex::SearchLayer(const la::Vec& query,
                                              uint32_t entry, size_t ef,
                                              int level,
                                              bool exclude_dead) const {
  // Epoch-stamped visited marks: reusing one buffer avoids zeroing O(n)
  // bytes per call (which would make bulk construction quadratic in
  // memory-clearing work). thread_local keeps concurrent SearchBatch
  // workers from sharing stamps; the buffer is shared across index
  // instances on a thread, which is safe because each call bumps the epoch.
  thread_local std::vector<uint64_t> visited_stamp;
  thread_local uint64_t visited_epoch = 0;
  if (visited_stamp.size() < nodes_.size()) {
    visited_stamp.resize(nodes_.size(), 0);
  }
  const uint64_t epoch = ++visited_epoch;
  auto visited = [&](uint32_t id) { return visited_stamp[id] == epoch; };
  auto mark_visited = [&](uint32_t id) { visited_stamp[id] = epoch; };
  mark_visited(entry);
  float entry_dist = Dist(query, vectors_[entry]);

  // `candidates`: frontier ordered closest-first. `best`: current ef
  // closest, ordered farthest-first so the worst is peekable.
  std::priority_queue<SearchHit, std::vector<SearchHit>, CloserFirst>
      candidates;
  std::priority_queue<SearchHit, std::vector<SearchHit>, FartherFirst> best;
  // Tombstoned nodes stay in `candidates` — they are graph waypoints the
  // beam must traverse to keep the graph connected — but never enter
  // `best`, so the returned set holds only live nodes.
  candidates.push({entry, entry_dist});
  if (!exclude_dead || !IsDead(entry)) best.push({entry, entry_dist});

  // Scratch for the batched neighbor expansion (per-thread, like the
  // visited marks above).
  thread_local std::vector<uint32_t> frontier;
  thread_local std::vector<float> frontier_distances;

  while (!candidates.empty()) {
    SearchHit current = candidates.top();
    candidates.pop();
    if (best.size() >= ef && current.distance > best.top().distance) break;
    // Gather the unvisited neighbors, compute their distances in one
    // batch-kernel call, then feed the heaps in the original order.
    frontier.clear();
    for (uint32_t neighbor : nodes_[current.id].neighbors[level]) {
      if (visited(neighbor)) continue;
      mark_visited(neighbor);
      frontier.push_back(neighbor);
    }
    if (frontier.empty()) continue;
    frontier_distances.resize(frontier.size());
    la::DistanceToMany(metric_, query, vectors_, norms_.data(),
                       frontier.data(), frontier.size(),
                       frontier_distances.data());
    for (size_t i = 0; i < frontier.size(); ++i) {
      float d = frontier_distances[i];
      if (best.size() < ef || d < best.top().distance) {
        candidates.push({frontier[i], d});
        if (!exclude_dead || !IsDead(frontier[i])) {
          best.push({frontier[i], d});
          if (best.size() > ef) best.pop();
        }
      }
    }
  }

  std::vector<SearchHit> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    std::vector<SearchHit> candidates, size_t max_degree) const {
  std::sort(candidates.begin(), candidates.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  std::vector<uint32_t> selected;
  selected.reserve(std::min(max_degree, candidates.size()));
  std::vector<SearchHit> skipped;
  for (const SearchHit& c : candidates) {
    if (selected.size() >= max_degree) break;
    bool keep = true;
    for (uint32_t s : selected) {
      if (StoredDist(static_cast<uint32_t>(c.id), s) < c.distance) {
        keep = false;
        break;
      }
    }
    if (keep) {
      selected.push_back(static_cast<uint32_t>(c.id));
    } else {
      skipped.push_back(c);
    }
  }
  // keepPrunedConnections: pad with the nearest rejected candidates so
  // low-degree nodes stay reachable.
  for (const SearchHit& c : skipped) {
    if (selected.size() >= max_degree) break;
    selected.push_back(static_cast<uint32_t>(c.id));
  }
  return selected;
}

void HnswIndex::ShrinkNeighbors(uint32_t id, int level) {
  std::vector<uint32_t>& links = nodes_[id].neighbors[level];
  if (links.size() <= MaxDegree(level)) return;
  std::vector<float> distances(links.size());
  la::DistanceToMany(metric_, vectors_[id], vectors_, norms_.data(),
                     links.data(), links.size(), distances.data());
  std::vector<SearchHit> candidates;
  candidates.reserve(links.size());
  for (size_t i = 0; i < links.size(); ++i) {
    candidates.push_back({links[i], distances[i]});
  }
  links = SelectNeighbors(std::move(candidates), MaxDegree(level));
}

void HnswIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  DUST_CHECK(vectors_.size() < UINT32_MAX);  // ids are stored as uint32_t
  const uint32_t id = static_cast<uint32_t>(vectors_.size());
  const int level = RandomLevel();
  vectors_.push_back(v);
  norms_.push_back(la::Norm(v));
  nodes_.push_back(Node{std::vector<std::vector<uint32_t>>(level + 1)});

  if (max_level_ < 0) {  // first element becomes the global entry point
    entry_point_ = id;
    max_level_ = level;
    return;
  }

  // Zoom in through layers above the new node's level.
  uint32_t current = entry_point_;
  for (int l = max_level_; l > level; --l) {
    current = GreedyStep(vectors_[id], current, l);
  }

  // Insert with beam search on every shared layer, top to bottom.
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    std::vector<SearchHit> found =
        SearchLayer(vectors_[id], current, config_.ef_construction, l);
    std::vector<uint32_t> neighbors =
        SelectNeighbors(found, config_.M);
    nodes_[id].neighbors[l] = neighbors;
    for (uint32_t n : neighbors) {
      nodes_[n].neighbors[l].push_back(id);
      ShrinkNeighbors(n, l);
    }
    // Continue the descent from the best node found on this layer.
    float current_dist = StoredDist(id, current);
    for (const SearchHit& h : found) {
      if (h.distance < current_dist) {
        current = static_cast<uint32_t>(h.id);
        current_dist = h.distance;
      }
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
}

std::vector<SearchHit> HnswIndex::Search(const la::Vec& query,
                                         size_t k) const {
  if (vectors_.empty() || k == 0 || live_size() == 0) return {};
  uint32_t current = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    // The upper-layer descent only picks a starting point, so tombstoned
    // waypoints are fine here; filtering happens on the layer-0 beam.
    current = GreedyStep(query, current, l);
  }
  size_t ef = std::max(config_.ef_search, k);
  if (num_dead_ > 0) {
    // Dead nodes never enter the result window (SearchLayer keeps them as
    // traversal waypoints only), so the beam just needs proportionally
    // more exploration to meet the same number of live vectors: scale ef
    // by the dead fraction instead of adding the full tombstone count,
    // which would throttle QPS far below the clean index at modest delete
    // rates.
    ef = std::min(vectors_.size(),
                  (ef * vectors_.size() + live_size() - 1) / live_size());
  }
  std::vector<SearchHit> hits =
      SearchLayer(query, current, ef, 0, /*exclude_dead=*/num_dead_ > 0);
  FinalizeHits(&hits, k);
  return hits;
}

Status HnswIndex::SavePayload(io::IndexWriter* writer) const {
  writer->WriteU64(config_.M);
  writer->WriteU64(config_.ef_construction);
  writer->WriteU64(config_.ef_search);
  writer->WriteU64(config_.seed);
  writer->WriteVecs(vectors_);
  writer->WriteU32(entry_point_);
  writer->WriteI64(max_level_);
  for (const Node& node : nodes_) {
    writer->WriteU32(static_cast<uint32_t>(node.neighbors.size()));
    for (const std::vector<uint32_t>& layer : node.neighbors) {
      writer->WriteU32(static_cast<uint32_t>(layer.size()));
      for (uint32_t id : layer) writer->WriteU32(id);
    }
  }
  return writer->status();
}

Status HnswIndex::LoadPayload(io::IndexReader* reader) {
  uint64_t m = 0, ef_construction = 0, ef_search = 0, seed = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU64(&m));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&ef_construction));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&ef_search));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&seed));
  // The constructor DUST_CHECKs these; file input must reject instead.
  if (m < 2 || ef_construction < 1 || ef_search < 1) {
    return Status::IoError("HNSW payload has invalid config");
  }
  config_.M = static_cast<size_t>(m);
  config_.ef_construction = static_cast<size_t>(ef_construction);
  config_.ef_search = static_cast<size_t>(ef_search);
  config_.seed = seed;
  level_mult_ =
      1.0 / std::log(static_cast<double>(std::max<size_t>(config_.M, 2)));
  rng_ = Rng(config_.seed);
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&vectors_, dim_));
  norms_ = la::NormsOf(vectors_);
  uint32_t entry_point = 0;
  int64_t max_level = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU32(&entry_point));
  DUST_RETURN_IF_ERROR(reader->ReadI64(&max_level));
  const size_t count = vectors_.size();
  if (count > 0 && entry_point >= count) {
    return Status::IoError("HNSW payload entry point out of range");
  }
  // RandomLevel clamps real builds to 48 layers; anything past 63 is a
  // corrupt file, and bounding it here keeps per-node layer counts (and the
  // resize they drive) small before any adjacency bytes are trusted.
  if (max_level < -1 || max_level > 63 ||
      (count == 0) != (max_level == -1)) {
    return Status::IoError("HNSW payload max level inconsistent");
  }
  entry_point_ = entry_point;
  max_level_ = static_cast<int>(max_level);
  nodes_.assign(count, Node{});
  for (size_t i = 0; i < count; ++i) {
    uint32_t num_layers = 0;
    DUST_RETURN_IF_ERROR(reader->ReadU32(&num_layers));
    if (num_layers == 0 ||
        num_layers > static_cast<uint32_t>(max_level_) + 1) {
      return Status::IoError("HNSW payload node layer count invalid");
    }
    nodes_[i].neighbors.resize(num_layers);
    for (uint32_t l = 0; l < num_layers; ++l) {
      uint32_t degree = 0;
      DUST_RETURN_IF_ERROR(reader->ReadU32(&degree));
      if (degree > reader->remaining() / sizeof(uint32_t)) {
        return Status::IoError("HNSW payload degree exceeds file size");
      }
      std::vector<uint32_t>& layer = nodes_[i].neighbors[l];
      layer.resize(degree);
      for (uint32_t n = 0; n < degree; ++n) {
        DUST_RETURN_IF_ERROR(reader->ReadU32(&layer[n]));
        if (layer[n] >= count) {
          return Status::IoError("HNSW payload neighbor id out of range");
        }
      }
    }
  }
  // Search descends from max_level_ starting at the entry point and walks
  // adjacency at every level it finds ids on; both would index past a
  // node's layer vector if the file under-reports layer counts, so enforce
  // the structural invariants a real build guarantees.
  if (count > 0 &&
      nodes_[entry_point_].neighbors.size() !=
          static_cast<size_t>(max_level_) + 1) {
    return Status::IoError("HNSW payload entry point misses the top layer");
  }
  for (size_t i = 0; i < count; ++i) {
    for (size_t l = 0; l < nodes_[i].neighbors.size(); ++l) {
      for (uint32_t n : nodes_[i].neighbors[l]) {
        if (nodes_[n].neighbors.size() <= l) {
          return Status::IoError(
              "HNSW payload links a node on a layer it does not have");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace dust::index
