// Random-hyperplane LSH index for cosine similarity: vectors hash to an
// nbits signature; queries probe their own bucket plus buckets within a
// small Hamming radius (multi-probe).
#ifndef DUST_INDEX_LSH_INDEX_H_
#define DUST_INDEX_LSH_INDEX_H_

#include <cstdint>
#include <unordered_map>

#include "index/vector_index.h"

namespace dust::index {

struct LshConfig {
  size_t nbits = 12;       // signature length (buckets = 2^nbits)
  size_t probe_radius = 1; // Hamming radius of multi-probe
  uint64_t seed = 42;
};

class LshIndex : public VectorIndex {
 public:
  LshIndex(size_t dim, la::Metric metric = la::Metric::kCosine,
           LshConfig config = {});

  void Add(const la::Vec& v) override;
  std::vector<SearchHit> Search(const la::Vec& query, size_t k) const override;

  size_t size() const override { return vectors_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "LSH"; }
  la::Metric metric() const override { return metric_; }
  std::string type_tag() const override { return "lsh"; }
  const LshConfig& config() const { return config_; }

  /// Persists the hyperplanes verbatim (not just the seed), so a loaded
  /// index hashes queries into exactly the buckets it was built with.
  Status SavePayload(io::IndexWriter* writer) const override;
  Status LoadPayload(io::IndexReader* reader) override;

  /// Signature of a vector (exposed for tests).
  uint64_t Signature(const la::Vec& v) const;

  bool GetVector(size_t id, la::Vec* out) const override {
    if (id >= vectors_.size()) return false;
    *out = vectors_[id];
    return true;
  }

 protected:
  /// The clone copies this index's hyperplanes verbatim (not just the
  /// seed), so a compacted index hashes queries into exactly the buckets
  /// the original would — even for an index loaded from a file whose
  /// hyperplanes predate a generator change.
  std::unique_ptr<VectorIndex> CloneEmpty() const override {
    auto clone = std::make_unique<LshIndex>(dim_, metric_, config_);
    clone->hyperplanes_ = hyperplanes_;
    return clone;
  }

 private:
  size_t dim_;
  la::Metric metric_;
  LshConfig config_;
  std::vector<la::Vec> hyperplanes_;
  std::vector<la::Vec> vectors_;
  /// norms_[id] = Norm(vectors_[id]) (Add/LoadPayload) for the fused
  /// cosine bucket scan.
  std::vector<float> norms_;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
};

}  // namespace dust::index

#endif  // DUST_INDEX_LSH_INDEX_H_
