// Exact (brute-force) index: linear scan over all stored vectors.
#ifndef DUST_INDEX_FLAT_INDEX_H_
#define DUST_INDEX_FLAT_INDEX_H_

#include "index/vector_index.h"

namespace dust::index {

/// Exact nearest-neighbor search under a configurable metric.
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(size_t dim, la::Metric metric = la::Metric::kCosine)
      : dim_(dim), metric_(metric) {}

  void Add(const la::Vec& v) override;
  /// Bulk append: one reservation for vectors and norms, then a single
  /// store-and-norm pass — the hot offline-build path skips the per-vector
  /// growth reallocations of the default loop.
  void AddAll(const std::vector<la::Vec>& vectors) override;
  std::vector<SearchHit> Search(const la::Vec& query, size_t k) const override;

  size_t size() const override { return vectors_.size(); }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "Flat"; }
  la::Metric metric() const override { return metric_; }
  std::string type_tag() const override { return "flat"; }

  Status SavePayload(io::IndexWriter* writer) const override;
  Status LoadPayload(io::IndexReader* reader) override;

  const la::Vec& vector(size_t id) const { return vectors_[id]; }
  bool GetVector(size_t id, la::Vec* out) const override {
    if (id >= vectors_.size()) return false;
    *out = vectors_[id];
    return true;
  }

 protected:
  std::unique_ptr<VectorIndex> CloneEmpty() const override {
    return std::make_unique<FlatIndex>(dim_, metric_);
  }

 private:
  size_t dim_;
  la::Metric metric_;
  std::vector<la::Vec> vectors_;
  /// norms_[id] = Norm(vectors_[id]), maintained by Add/LoadPayload so the
  /// cosine scan needs one dot product per candidate.
  std::vector<float> norms_;
};

}  // namespace dust::index

#endif  // DUST_INDEX_FLAT_INDEX_H_
