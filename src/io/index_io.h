// Versioned binary persistence for vector indexes and pipeline snapshots.
//
// The ROADMAP north star is a lake that is indexed once offline and served
// by many processes online (Starmie/EasyTUS-style offline/online split).
// This module defines the on-disk format and the low-level writer/reader
// both layers share:
//
//   index file     := header payload
//   header         := magic("DUSTIDX\0") version:u32 type:u8 metric:u8
//                     dim:u64
//   payload        := type-specific (see each VectorIndex::SavePayload)
//
// Pipeline snapshots (core/pipeline.h) embed an index file after their own
// header using the same writer. All integers and floats are written in the
// host's native byte order (little-endian on every supported target); files
// are not portable across endianness, only across processes/machines of the
// same family. Readers validate magic, version, type, metric, and every
// element count against the bytes actually remaining in the file, so a
// corrupt or truncated file yields Status::IoError instead of an abort or
// an unbounded allocation.
#ifndef DUST_IO_INDEX_IO_H_
#define DUST_IO_INDEX_IO_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "la/distance.h"
#include "la/vector_ops.h"
#include "util/status.h"

namespace dust::io {

/// Current index file format version. Bump when the header or any payload
/// layout changes. Version 2 inserts a tombstone id list between the
/// common header and the type payload; version-1 files (no tombstone
/// section) still load, with an empty tombstone set. Readers reject any
/// other version.
inline constexpr uint32_t kIndexFormatVersion = 2;

/// Oldest index file format version ReadIndex still accepts.
inline constexpr uint32_t kMinIndexFormatVersion = 1;

/// 8-byte magic at the start of a standalone index file.
inline constexpr char kIndexMagic[8] = {'D', 'U', 'S', 'T',
                                        'I', 'D', 'X', '\0'};

/// 8-byte magic at the start of a pipeline snapshot file.
inline constexpr char kSnapshotMagic[8] = {'D', 'U', 'S', 'T',
                                           'S', 'N', 'A', 'P'};

/// 8-byte magic opening the sharded-index manifest payload (shard count,
/// placement policy, id mapping, then per-shard embedded index files) —
/// see shard::ShardedIndex::SavePayload.
inline constexpr char kShardManifestMagic[8] = {'D', 'U', 'S', 'T',
                                                'S', 'H', 'R', 'D'};

/// Buffered binary writer. Write calls never throw; the first stream
/// failure latches into status() so payload code can write unconditionally
/// and check once at the end (RocksDB-style).
class IndexWriter {
 public:
  explicit IndexWriter(const std::string& path);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  void WriteU8(uint8_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteBytes(const char* data, size_t n) { WriteRaw(data, n); }

  /// Length-prefixed (u64) UTF-8 string.
  void WriteString(const std::string& s);
  /// Length-prefixed (u64) float vector.
  void WriteVec(const la::Vec& v);
  /// Count-prefixed (u64) list of vectors, each length-prefixed.
  void WriteVecs(const std::vector<la::Vec>& vectors);
  /// Count-prefixed (u64) list of u64 ids.
  void WriteIds(const std::vector<size_t>& ids);

  /// Flushes and closes the stream; returns the final status.
  Status Close();

 private:
  void WriteRaw(const void* data, size_t n);

  std::string path_;
  std::ofstream out_;
  Status status_;
};

/// Binary reader with bounds-checked counts. Every Read returns a Status;
/// use DUST_RETURN_IF_ERROR to propagate. Counts read via ReadCount are
/// validated against the bytes remaining in the file so corrupt length
/// fields cannot trigger multi-gigabyte allocations.
class IndexReader {
 public:
  explicit IndexReader(const std::string& path);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  /// Bytes not yet consumed.
  uint64_t remaining() const { return remaining_; }

  Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadFloat(float* v) { return ReadRaw(v, sizeof(*v)); }

  /// Reads a u64 element count and rejects it unless count * elem_size
  /// bytes are still available in the file.
  Status ReadCount(size_t elem_size, uint64_t* count);

  /// Expects the exact 8-byte magic; IoError mentioning `what` otherwise.
  Status ExpectMagic(const char magic[8], const std::string& what);

  Status ReadString(std::string* s);
  /// Reads a length-prefixed vector and checks it has exactly `dim`
  /// elements (pass 0 to accept any length).
  Status ReadVec(la::Vec* v, size_t dim);
  Status ReadVecs(std::vector<la::Vec>* vectors, size_t dim);
  Status ReadIds(std::vector<size_t>* ids);

 private:
  Status ReadRaw(void* data, size_t n);

  std::string path_;
  std::ifstream in_;
  uint64_t remaining_ = 0;
  Status status_;
};

/// Stable on-disk tag for an index type name ("flat", "hnsw", "ivf",
/// "lsh", "sharded"); never reorder existing values. Returns false for
/// unknown names.
bool IndexTypeTag(const std::string& type, uint8_t* tag);
/// Inverse of IndexTypeTag; IoError for unknown tags (corrupt files must
/// surface as errors, not aborts).
Status IndexTypeFromTag(uint8_t tag, std::string* type);

/// Metric <-> on-disk tag; same stability rules as the type tag.
uint8_t MetricTag(la::Metric metric);
Status MetricFromTag(uint8_t tag, la::Metric* metric);

/// Writes `index` (header + payload) into an already-open writer, e.g. in
/// the middle of a snapshot file.
Status WriteIndex(const index::VectorIndex& index, IndexWriter* writer);

/// Reads one index (header + payload) from an already-open reader.
Result<std::unique_ptr<index::VectorIndex>> ReadIndex(IndexReader* reader);

/// Saves `index` as a standalone file at `path`. Equivalent to
/// index.Save(path).
Status SaveIndex(const index::VectorIndex& index, const std::string& path);

/// Loads a standalone index file. The concrete type, metric, dim, config,
/// and contents are restored from the file; Search/SearchBatch on the
/// result are bit-identical to the saved index.
Result<std::unique_ptr<index::VectorIndex>> LoadIndex(const std::string& path);

}  // namespace dust::io

#endif  // DUST_IO_INDEX_IO_H_
