#include "io/index_io.h"

#include <cstring>

namespace dust::io {

namespace {

// Hard cap on any single element count read from disk. Counts are also
// bounds-checked against the file size; this is belt-and-suspenders against
// small-element overflows.
constexpr uint64_t kMaxCount = uint64_t{1} << 40;

}  // namespace

// --- IndexWriter -----------------------------------------------------------

IndexWriter::IndexWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

void IndexWriter::WriteRaw(const void* data, size_t n) {
  if (!status_.ok()) return;  // latched failure: later writes are no-ops
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_) status_ = Status::IoError("write failed: " + path_);
}

void IndexWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void IndexWriter::WriteVec(const la::Vec& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void IndexWriter::WriteVecs(const std::vector<la::Vec>& vectors) {
  WriteU64(vectors.size());
  for (const la::Vec& v : vectors) WriteVec(v);
}

void IndexWriter::WriteIds(const std::vector<size_t>& ids) {
  WriteU64(ids.size());
  for (size_t id : ids) WriteU64(id);
}

Status IndexWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_ && status_.ok()) {
      status_ = Status::IoError("flush failed: " + path_);
    }
    out_.close();
  }
  return status_;
}

// --- IndexReader -----------------------------------------------------------

IndexReader::IndexReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary | std::ios::ate) {
  if (!in_) {
    status_ = Status::IoError("cannot open for reading: " + path);
    return;
  }
  remaining_ = static_cast<uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);
}

Status IndexReader::ReadRaw(void* data, size_t n) {
  DUST_RETURN_IF_ERROR(status_);
  if (n > remaining_) {
    status_ = Status::IoError("unexpected end of file: " + path_);
    return status_;
  }
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!in_) {
    status_ = Status::IoError("read failed: " + path_);
    return status_;
  }
  remaining_ -= n;
  return Status::Ok();
}

Status IndexReader::ReadCount(size_t elem_size, uint64_t* count) {
  DUST_RETURN_IF_ERROR(ReadU64(count));
  // A corrupt length field must not drive a huge allocation: the elements
  // it promises have to physically fit in the rest of the file.
  if (*count > kMaxCount ||
      (elem_size > 0 && *count > remaining_ / elem_size)) {
    status_ = Status::IoError("corrupt element count in " + path_);
    return status_;
  }
  return Status::Ok();
}

Status IndexReader::ExpectMagic(const char magic[8], const std::string& what) {
  char buf[8] = {0};
  DUST_RETURN_IF_ERROR(ReadRaw(buf, sizeof(buf)));
  if (std::memcmp(buf, magic, sizeof(buf)) != 0) {
    status_ = Status::IoError("not a " + what + " file: " + path_);
    return status_;
  }
  return Status::Ok();
}

Status IndexReader::ReadString(std::string* s) {
  uint64_t len = 0;
  DUST_RETURN_IF_ERROR(ReadCount(1, &len));
  s->resize(len);
  return len > 0 ? ReadRaw(s->data(), len) : Status::Ok();
}

Status IndexReader::ReadVec(la::Vec* v, size_t dim) {
  uint64_t len = 0;
  DUST_RETURN_IF_ERROR(ReadCount(sizeof(float), &len));
  if (dim != 0 && len != dim) {
    status_ = Status::IoError("vector dimension mismatch in " + path_);
    return status_;
  }
  v->resize(len);
  return len > 0 ? ReadRaw(v->data(), len * sizeof(float)) : Status::Ok();
}

Status IndexReader::ReadVecs(std::vector<la::Vec>* vectors, size_t dim) {
  uint64_t count = 0;
  // Each vector is at least its own u64 length prefix.
  DUST_RETURN_IF_ERROR(ReadCount(sizeof(uint64_t), &count));
  vectors->clear();
  vectors->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    la::Vec v;
    DUST_RETURN_IF_ERROR(ReadVec(&v, dim));
    vectors->push_back(std::move(v));
  }
  return Status::Ok();
}

Status IndexReader::ReadIds(std::vector<size_t>* ids) {
  uint64_t count = 0;
  DUST_RETURN_IF_ERROR(ReadCount(sizeof(uint64_t), &count));
  ids->clear();
  ids->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    DUST_RETURN_IF_ERROR(ReadU64(&id));
    ids->push_back(static_cast<size_t>(id));
  }
  return Status::Ok();
}

// --- tags ------------------------------------------------------------------

bool IndexTypeTag(const std::string& type, uint8_t* tag) {
  if (type == "flat") {
    *tag = 0;
  } else if (type == "hnsw") {
    *tag = 1;
  } else if (type == "ivf") {
    *tag = 2;
  } else if (type == "lsh") {
    *tag = 3;
  } else if (type == "sharded") {
    *tag = 4;
  } else {
    return false;
  }
  return true;
}

Status IndexTypeFromTag(uint8_t tag, std::string* type) {
  switch (tag) {
    case 0:
      *type = "flat";
      return Status::Ok();
    case 1:
      *type = "hnsw";
      return Status::Ok();
    case 2:
      *type = "ivf";
      return Status::Ok();
    case 3:
      *type = "lsh";
      return Status::Ok();
    case 4:
      *type = "sharded";
      return Status::Ok();
    default:
      return Status::IoError("unknown index type tag " +
                             std::to_string(static_cast<int>(tag)));
  }
}

uint8_t MetricTag(la::Metric metric) { return static_cast<uint8_t>(metric); }

Status MetricFromTag(uint8_t tag, la::Metric* metric) {
  switch (tag) {
    case 0:
      *metric = la::Metric::kCosine;
      return Status::Ok();
    case 1:
      *metric = la::Metric::kEuclidean;
      return Status::Ok();
    case 2:
      *metric = la::Metric::kManhattan;
      return Status::Ok();
    default:
      return Status::IoError("unknown metric tag " +
                             std::to_string(static_cast<int>(tag)));
  }
}

// --- index save/load -------------------------------------------------------

Status WriteIndex(const index::VectorIndex& index, IndexWriter* writer) {
  uint8_t tag = 0;
  if (!IndexTypeTag(index.type_tag(), &tag)) {
    return Status::Internal("index type has no on-disk tag: " +
                            index.type_tag());
  }
  writer->WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer->WriteU32(kIndexFormatVersion);
  writer->WriteU8(tag);
  writer->WriteU8(MetricTag(index.metric()));
  writer->WriteU64(index.dim());
  // Format v2: the tombstone id list sits between the header and the type
  // payload. Types whose payload already embeds tombstones (the sharded
  // manifest persists each child's own list) write an empty section here so
  // the ids are never applied twice on load.
  if (index.TombstonesInPayload()) {
    writer->WriteIds({});
  } else {
    writer->WriteIds(index.Tombstones());
  }
  DUST_RETURN_IF_ERROR(writer->status());
  return index.SavePayload(writer);
}

Result<std::unique_ptr<index::VectorIndex>> ReadIndex(IndexReader* reader) {
  DUST_RETURN_IF_ERROR(reader->ExpectMagic(kIndexMagic, "DUST index"));
  uint32_t version = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version < kMinIndexFormatVersion || version > kIndexFormatVersion) {
    return Status::IoError(
        "unsupported index format version " + std::to_string(version) +
        " (expected " + std::to_string(kMinIndexFormatVersion) + ".." +
        std::to_string(kIndexFormatVersion) + ")");
  }
  uint8_t type_tag = 0;
  uint8_t metric_tag = 0;
  uint64_t dim = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU8(&type_tag));
  DUST_RETURN_IF_ERROR(reader->ReadU8(&metric_tag));
  DUST_RETURN_IF_ERROR(reader->ReadU64(&dim));
  if (dim == 0) {
    // dim 0 would disable ReadVec's per-vector dimension checks ("accept
    // any length"), letting ragged vectors through to abort in the distance
    // kernels at query time.
    return Status::IoError("index header has dimension 0");
  }
  std::string type;
  DUST_RETURN_IF_ERROR(IndexTypeFromTag(type_tag, &type));
  la::Metric metric = la::Metric::kCosine;
  DUST_RETURN_IF_ERROR(MetricFromTag(metric_tag, &metric));
  // A file carrying an unsupported type/metric pairing (e.g. lsh +
  // euclidean) must surface as a Status, not trip MakeVectorIndex's
  // internal DUST_CHECK.
  DUST_RETURN_IF_ERROR(index::ValidateIndexMetric(type, metric));
  // Format v2 tombstone section. ReadIds bounds-checks the count against
  // the remaining bytes before allocating, so an oversized or truncated
  // tombstone list is rejected without a huge allocation; v1 files simply
  // have no section (empty tombstone set).
  std::vector<size_t> tombstones;
  if (version >= 2) {
    DUST_RETURN_IF_ERROR(reader->ReadIds(&tombstones));
  }
  std::unique_ptr<index::VectorIndex> index =
      index::MakeVectorIndex(type, static_cast<size_t>(dim), metric);
  DUST_RETURN_IF_ERROR(index->LoadPayload(reader));
  // Applied after the payload so the ids can be validated against the
  // loaded size; out-of-range or duplicate ids reject the file.
  DUST_RETURN_IF_ERROR(index->ApplyTombstones(tombstones));
  return index;
}

Status SaveIndex(const index::VectorIndex& index, const std::string& path) {
  IndexWriter writer(path);
  DUST_RETURN_IF_ERROR(writer.status());
  DUST_RETURN_IF_ERROR(WriteIndex(index, &writer));
  return writer.Close();
}

Result<std::unique_ptr<index::VectorIndex>> LoadIndex(const std::string& path) {
  IndexReader reader(path);
  DUST_RETURN_IF_ERROR(reader.status());
  return ReadIndex(&reader);
}

}  // namespace dust::io
